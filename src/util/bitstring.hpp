// Arbitrary-length bit strings.
//
// A BitString models the realization x_i ∈ {0,1}^t of the random bits a party
// received during the first t rounds (Section 2.1 of the paper). Strings are
// value types with lexicographic ordering, O(1) amortized append, and prefix
// extraction (needed for the succession relation ρ ≺ ρ′, Definition 4.6).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace rsb {

class BitString {
 public:
  /// The empty string ⊥ (time 0).
  BitString() = default;

  /// Builds a string of length `length` from the low bits of `bits`;
  /// bits[0] = least significant bit of `bits` is the round-1 bit.
  /// length must be at most 64.
  static BitString from_bits(std::uint64_t bits, int length);

  /// Parses a string of '0'/'1' characters; throws InvalidArgument otherwise.
  static BitString parse(const std::string& text);

  int size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Bit received at round `round` (1-based, matching the paper's X_i(t)).
  bool bit_at_round(int round) const;

  /// 0-based access.
  bool operator[](int index) const;

  /// Appends the bit received in the next round.
  void push_back(bool bit);

  /// Empties the string while keeping the word buffer allocated (for
  /// stream holders that are reset between runs, e.g. SourceBank).
  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  /// The prefix of the first `length` bits: x(1,...,length).
  BitString prefix(int length) const;

  /// True iff *this is a prefix of `other` (used by succession checks).
  bool is_prefix_of(const BitString& other) const;

  /// Lexicographic order; shorter strings compare before their extensions.
  std::strong_ordering operator<=>(const BitString& other) const noexcept;
  bool operator==(const BitString& other) const noexcept;

  /// '0'/'1' rendering, round 1 first. The empty string renders as "⊥".
  std::string to_string() const;

  std::uint64_t hash() const noexcept;

 private:
  static constexpr int kWordBits = 64;
  // words_[w] bit b (LSB-first) holds the bit with 0-based index w*64+b.
  std::vector<std::uint64_t> words_;
  int size_ = 0;
};

struct BitStringHash {
  std::size_t operator()(const BitString& s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace rsb
