// Deterministic pseudo-random number generation.
//
// The library never uses std::random_device or global state: every stochastic
// component (randomness sources, Monte-Carlo estimators, protocol executions)
// takes an explicit seed so that all experiments are reproducible bit-for-bit.
//
// Two engines are provided:
//  * SplitMix64 — tiny, used for seeding and cheap hashing-style streams.
//  * Xoshiro256StarStar — the main engine; passes BigCrush, 256-bit state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rsb {

/// SplitMix64: a 64-bit state PRNG mainly used to expand seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
/// UniformRandomBitGenerator-compatible so it can drive <random>
/// distributions when convenient.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by expanding `seed` through SplitMix64, as
  /// recommended by the xoshiro authors.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept;

  std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }

  /// A single uniform bit.
  bool next_bit() noexcept { return (next() >> 63) != 0; }

  /// Uniform integer in [0, bound). Uses rejection sampling; unbiased.
  /// bound must be positive.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Equivalent to the xoshiro jump() function: advances the stream by 2^128
  /// steps, useful to derive non-overlapping parallel streams.
  void jump() noexcept;

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Derives a child seed from a parent seed and a stream index. Used to give
/// each randomness source / party / trial its own independent stream.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept;

}  // namespace rsb
