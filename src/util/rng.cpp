#include "util/rng.hpp"

#include "util/hash.hpp"

namespace rsb {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is a fixed point of xoshiro; SplitMix64 cannot emit four
  // consecutive zeros from any seed, so the state is always valid.
}

std::uint64_t Xoshiro256StarStar::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256StarStar::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection: draw until the draw falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256StarStar::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept {
  return mix64(hash_combine(mix64(parent), stream + 1));
}

}  // namespace rsb
