#include "core/probability.hpp"

#include <cmath>
#include <map>

#include "core/consistency.hpp"
#include "core/solvability.hpp"
#include "randomness/realization.hpp"
#include "util/error.hpp"
#include "util/partitions.hpp"
#include "util/rng.hpp"

namespace rsb {

namespace {

/// Memoizes SymmetricTask::partition_solves on sorted class-size multisets;
/// enumeration revisits the same shapes constantly.
class PartitionVerdictCache {
 public:
  explicit PartitionVerdictCache(const SymmetricTask& task) : task_(task) {}

  bool solves(const std::vector<int>& partition) {
    std::vector<int> sizes = block_sizes(partition);
    std::sort(sizes.begin(), sizes.end());
    auto it = cache_.find(sizes);
    if (it != cache_.end()) return it->second;
    const bool verdict = task_.partition_solves(sizes);
    cache_.emplace(std::move(sizes), verdict);
    return verdict;
  }

 private:
  const SymmetricTask& task_;
  std::map<std::vector<int>, bool> cache_;
};

Dyadic probability_from_count(std::uint64_t solving, int log2_total) {
  return Dyadic(solving, log2_total);
}

}  // namespace

Dyadic exact_solve_probability_blackboard(const SourceConfiguration& config,
                                          const SymmetricTask& task,
                                          int time) {
  if (task.num_parties() != config.num_parties()) {
    throw InvalidArgument(
        "exact_solve_probability_blackboard: task/config party mismatch");
  }
  PartitionVerdictCache cache(task);
  std::uint64_t solving = 0;
  for_each_positive_realization(
      config, time, [&](const Realization& realization) {
        if (cache.solves(realization.equal_string_partition())) ++solving;
      });
  return probability_from_count(solving, config.num_sources() * time);
}

Dyadic exact_solve_probability_blackboard_via_knowledge(
    const SourceConfiguration& config, const SymmetricTask& task, int time) {
  if (task.num_parties() != config.num_parties()) {
    throw InvalidArgument(
        "exact_solve_probability_blackboard_via_knowledge: party mismatch");
  }
  KnowledgeStore store;
  PartitionVerdictCache cache(task);
  std::uint64_t solving = 0;
  for_each_positive_realization(
      config, time, [&](const Realization& realization) {
        if (cache.solves(
                consistency_partition_blackboard(store, realization))) {
          ++solving;
        }
      });
  return probability_from_count(solving, config.num_sources() * time);
}

Dyadic exact_solve_probability_message_passing(
    const SourceConfiguration& config, const SymmetricTask& task, int time,
    const PortAssignment& ports, MessageVariant variant) {
  if (task.num_parties() != config.num_parties()) {
    throw InvalidArgument(
        "exact_solve_probability_message_passing: party mismatch");
  }
  if (ports.num_parties() != config.num_parties()) {
    throw InvalidArgument(
        "exact_solve_probability_message_passing: ports mismatch");
  }
  KnowledgeStore store;
  PartitionVerdictCache cache(task);
  std::uint64_t solving = 0;
  for_each_positive_realization(
      config, time, [&](const Realization& realization) {
        if (cache.solves(consistency_partition_message_passing(
                store, realization, ports, variant))) {
          ++solving;
        }
      });
  return probability_from_count(solving, config.num_sources() * time);
}

std::vector<Dyadic> exact_series_blackboard(const SourceConfiguration& config,
                                            const SymmetricTask& task,
                                            int t_max) {
  std::vector<Dyadic> series;
  series.reserve(static_cast<std::size_t>(t_max));
  for (int t = 1; t <= t_max; ++t) {
    series.push_back(exact_solve_probability_blackboard(config, task, t));
  }
  return series;
}

std::vector<Dyadic> exact_series_message_passing(
    const SourceConfiguration& config, const SymmetricTask& task, int t_max,
    const PortAssignment& ports, MessageVariant variant) {
  std::vector<Dyadic> series;
  series.reserve(static_cast<std::size_t>(t_max));
  for (int t = 1; t <= t_max; ++t) {
    series.push_back(exact_solve_probability_message_passing(config, task, t,
                                                             ports, variant));
  }
  return series;
}

MonteCarloEstimate monte_carlo_solve_probability(
    const SourceConfiguration& config, const SymmetricTask& task, int time,
    const std::optional<PortAssignment>& ports, std::uint64_t trials,
    std::uint64_t seed) {
  if (trials == 0) {
    throw InvalidArgument("monte_carlo_solve_probability: zero trials");
  }
  Xoshiro256StarStar rng(seed);
  KnowledgeStore store;
  PartitionVerdictCache cache(task);
  std::uint64_t successes = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const Realization realization = sample_realization(config, time, rng);
    std::vector<int> partition;
    if (ports.has_value()) {
      partition =
          consistency_partition_message_passing(store, realization, *ports);
    } else {
      partition = realization.equal_string_partition();
    }
    if (cache.solves(partition)) ++successes;
  }
  MonteCarloEstimate estimate;
  estimate.trials = trials;
  estimate.successes = successes;
  estimate.p_hat =
      static_cast<double>(successes) / static_cast<double>(trials);
  estimate.std_error = std::sqrt(
      estimate.p_hat * (1.0 - estimate.p_hat) / static_cast<double>(trials));
  return estimate;
}

double theorem41_rate_lower_bound(int num_sources, int time) {
  if (num_sources < 1 || time < 0) {
    throw InvalidArgument("theorem41_rate_lower_bound: bad arguments");
  }
  const double per_source = 1.0 - std::pow(2.0, -time);
  return std::pow(per_source, num_sources - 1);
}

}  // namespace rsb
