#include "core/deciders.hpp"

#include "util/error.hpp"

namespace rsb {

bool eventually_solvable_blackboard(const SourceConfiguration& config,
                                    const SymmetricTask& task) {
  if (task.num_parties() != config.num_parties()) {
    throw InvalidArgument("eventually_solvable_blackboard: party mismatch");
  }
  return task.partition_solves(config.loads());
}

bool eventually_solvable_message_passing_worst_case(
    const SourceConfiguration& config, const SymmetricTask& task) {
  if (task.num_parties() != config.num_parties()) {
    throw InvalidArgument(
        "eventually_solvable_message_passing_worst_case: party mismatch");
  }
  const int g = config.gcd_of_loads();
  const int blocks = config.num_parties() / g;
  return task.partition_solves(
      std::vector<int>(static_cast<std::size_t>(blocks), g));
}

bool theorem41_predicate(const SourceConfiguration& config) {
  return config.has_singleton_source();
}

bool theorem42_predicate(const SourceConfiguration& config) {
  return config.gcd_of_loads() == 1;
}

LimitClass classify_limit(const std::vector<Dyadic>& series) {
  if (series.empty()) return LimitClass::kUndetermined;
  bool all_zero = true;
  for (const Dyadic& p : series) {
    if (!p.is_zero()) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) return LimitClass::kZero;
  if (!is_monotone_non_decreasing(series)) return LimitClass::kUndetermined;
  const Dyadic half(1, 1);
  if (series.back() > half) return LimitClass::kOne;
  return LimitClass::kUndetermined;
}

bool is_monotone_non_decreasing(const std::vector<Dyadic>& series) {
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i] < series[i - 1]) return false;
  }
  return true;
}

}  // namespace rsb
