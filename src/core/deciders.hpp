// Eventual-solvability deciders.
//
// These are the analytic characterizations the paper proves (and, for
// general symmetric tasks, the characterizations its framework yields —
// derived in DESIGN.md and validated exhaustively against enumeration in
// the test suite and benches):
//
//  * Blackboard (generalizes Theorem 4.1): eventually solvable iff the
//    *source partition itself* solves, i.e. some assignment of one output
//    value per source class has an admissible census.
//    Reasoning: consistency classes are unions of source classes; the
//    partition refines over time and a.s. reaches the source partition;
//    class-constant assignments are preserved under refinement, so the
//    finest reachable partition decides.
//
//  * Message-passing, worst-case ports (generalizes Theorem 4.2): with
//    g = gcd(n_1,...,n_k), eventually solvable iff the uniform partition
//    into n/g classes of size g solves.
//    Reasoning: under the Lemma 4.3 adversarial ports every class is a
//    union of g-blocks (only-if); conversely the Euclid/CreateMatching
//    procedure refines every run to classes of size exactly g under any
//    ports (if).
//
// For leader election these specialize to the paper's statements:
//  Theorem 4.1 — ∃i n_i = 1;  Theorem 4.2 — gcd(n_1,...,n_k) = 1.
#pragma once

#include <vector>

#include "randomness/config.hpp"
#include "randomness/dyadic.hpp"
#include "tasks/tasks.hpp"

namespace rsb {

/// Generalized Theorem 4.1: eventual solvability on the blackboard.
bool eventually_solvable_blackboard(const SourceConfiguration& config,
                                    const SymmetricTask& task);

/// Generalized Theorem 4.2: eventual solvability in the message-passing
/// model for *every* port assignment (worst case).
bool eventually_solvable_message_passing_worst_case(
    const SourceConfiguration& config, const SymmetricTask& task);

/// The literal Theorem 4.1 predicate for leader election: ∃i, n_i = 1.
bool theorem41_predicate(const SourceConfiguration& config);

/// The literal Theorem 4.2 predicate for leader election: gcd = 1.
bool theorem42_predicate(const SourceConfiguration& config);

/// Empirical classification of a p(t) series per the zero–one law
/// (Lemma 3.2): every limit is 0 or 1.
enum class LimitClass {
  kZero,          // identically zero so far (unsolvable pattern)
  kOne,           // monotone and beyond 1/2 (convergence-to-1 pattern)
  kUndetermined,  // the finite prefix does not witness either pattern
};

LimitClass classify_limit(const std::vector<Dyadic>& series);

/// True iff the series is non-decreasing — solvability is cumulative
/// (knowledge is monotone), so every exact p(t) series must satisfy this.
bool is_monotone_non_decreasing(const std::vector<Dyadic>& series);

}  // namespace rsb
