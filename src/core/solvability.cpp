#include "core/solvability.hpp"

#include "topology/simplicial_map.hpp"
#include "util/partitions.hpp"

namespace rsb {

bool solves_by_definition31(const std::vector<KnowledgeId>& knowledge,
                            const SymmetricTask& task) {
  // The protocol facet σ = {(i, K_i(t))} as a one-facet complex.
  std::vector<Vertex<std::uint64_t>> verts;
  verts.reserve(knowledge.size());
  for (std::size_t i = 0; i < knowledge.size(); ++i) {
    verts.push_back(Vertex<std::uint64_t>{static_cast<int>(i), knowledge[i]});
  }
  ChromaticComplex<std::uint64_t> sigma;
  sigma.add_simplex(Simplex<std::uint64_t>(std::move(verts)));

  // δ : σ → O, name-preserving and name-independent. Since σ carries all n
  // names and δ preserves them, the image of the facet is an (n−1)-simplex
  // of O, i.e. a facet τ — so searching into O is searching over all τ ∈ O.
  const OutputComplex output = task.output_complex();
  return exists_simplicial_map(sigma, output,
                               /*require_name_independent=*/true);
}

bool solves_by_definition34(const Realization& realization,
                            const std::vector<int>& consistency_partition,
                            const SymmetricTask& task) {
  const RealizationComplex projected_rho =
      complex_from_partition(realization, consistency_partition);
  // Try every facet τ of O: build π(τ) and search for a name-preserving
  // simplicial map π̃(ρ) → π(τ). (Name-independence is not required here —
  // Definition 3.4 — the projections' structure enforces it.)
  for (const auto& tau : task.output_complex().facets()) {
    const OutputComplex projected_tau = project_facet(tau);
    if (exists_simplicial_map(projected_rho, projected_tau,
                              /*require_name_independent=*/false)) {
      return true;
    }
  }
  return false;
}

bool solves_by_partition(const std::vector<int>& consistency_partition,
                         const SymmetricTask& task) {
  return task.partition_solves(block_sizes(consistency_partition));
}

bool realization_solves_blackboard(KnowledgeStore& store,
                                   const Realization& realization,
                                   const SymmetricTask& task) {
  return solves_by_partition(
      consistency_partition_blackboard(store, realization), task);
}

bool realization_solves_message_passing(KnowledgeStore& store,
                                        const Realization& realization,
                                        const PortAssignment& ports,
                                        const SymmetricTask& task) {
  return solves_by_partition(
      consistency_partition_message_passing(store, realization, ports), task);
}

}  // namespace rsb
