// Facet-local solvability — Definitions 3.1 and 3.4.
//
// Three independent decision paths are provided; Lemma 3.5 says they agree,
// and the test suite checks that agreement exhaustively on small systems:
//
//  (1) Definition 3.1 (protocol side): the facet σ = {(i, K_i(t))} of P(t)
//      solves O iff a name-preserving *and name-independent* simplicial map
//      δ : σ → τ exists for some facet τ ∈ O. Implemented with the generic
//      backtracking map search of src/topology.
//
//  (2) Definition 3.4 (realization side): ρ ∈ R(t) solves O iff a
//      name-preserving simplicial map δ : π̃(ρ) → π(τ) exists for some facet
//      τ ∈ O (name-independence is provided by the projections' structure).
//      Also implemented via the generic search, over the projected complexes.
//
//  (3) The combinatorial shortcut this library uses at scale: ρ solves O iff
//      some assignment of one output value per consistency class yields an
//      admissible output census — SymmetricTask::partition_solves on the
//      class sizes. (For O_LE this is the paper's isolated-vertex criterion:
//      some class is a singleton.)
#pragma once

#include <vector>

#include "core/consistency.hpp"
#include "knowledge/knowledge.hpp"
#include "model/models.hpp"
#include "randomness/realization.hpp"
#include "tasks/tasks.hpp"

namespace rsb {

/// Path (1): Definition 3.1 on the protocol facet induced by ρ.
/// `knowledge` is the knowledge vector (K_1(t), ..., K_n(t)) of ρ under the
/// chosen model (see knowledge_at_blackboard / knowledge_at_message_passing).
bool solves_by_definition31(const std::vector<KnowledgeId>& knowledge,
                            const SymmetricTask& task);

/// Path (2): Definition 3.4 on the realization facet, given its consistency
/// partition under the chosen model.
bool solves_by_definition34(const Realization& realization,
                            const std::vector<int>& consistency_partition,
                            const SymmetricTask& task);

/// Path (3): the class-size shortcut.
bool solves_by_partition(const std::vector<int>& consistency_partition,
                         const SymmetricTask& task);

/// Convenience wrappers that run the model's knowledge recursion and then
/// apply path (3) — the production entry points.
bool realization_solves_blackboard(KnowledgeStore& store,
                                   const Realization& realization,
                                   const SymmetricTask& task);

bool realization_solves_message_passing(KnowledgeStore& store,
                                        const Realization& realization,
                                        const PortAssignment& ports,
                                        const SymmetricTask& task);

}  // namespace rsb
