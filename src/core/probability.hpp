// The probability of solving a task at time t — Pr[S(t) | α].
//
// S(t) is the set of realizations at time t that solve the task
// (Section 3.4). By Lemma B.1 every positive-probability realization under α
// weighs exactly 2^{-tk}, so
//
//   Pr[S(t) | α] = (number of solving realizations) / 2^{tk},
//
// an exact dyadic rational this engine computes by enumeration of all 2^{tk}
// source-string choices. A Monte-Carlo estimator covers parameter ranges
// beyond the enumeration cap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "knowledge/knowledge.hpp"
#include "model/models.hpp"
#include "randomness/config.hpp"
#include "randomness/dyadic.hpp"
#include "tasks/tasks.hpp"

namespace rsb {

/// Exact Pr[S(t) | α] in the blackboard model. Uses the blackboard fact
/// that the consistency partition equals the equal-string partition
/// (Section 4.1; verified against the knowledge recursion in tests).
Dyadic exact_solve_probability_blackboard(const SourceConfiguration& config,
                                          const SymmetricTask& task, int time);

/// Exact Pr[S(t) | α] in the blackboard model computed through the full
/// knowledge recursion (slow path; for cross-validation).
Dyadic exact_solve_probability_blackboard_via_knowledge(
    const SourceConfiguration& config, const SymmetricTask& task, int time);

/// Exact Pr[S(t) | α] in the message-passing model under fixed ports.
Dyadic exact_solve_probability_message_passing(
    const SourceConfiguration& config, const SymmetricTask& task, int time,
    const PortAssignment& ports,
    MessageVariant variant = MessageVariant::kPortTagged);

/// The series p(1), ..., p(t_max) (exact), blackboard model.
std::vector<Dyadic> exact_series_blackboard(const SourceConfiguration& config,
                                            const SymmetricTask& task,
                                            int t_max);

/// The series p(1), ..., p(t_max) (exact), message-passing model.
std::vector<Dyadic> exact_series_message_passing(
    const SourceConfiguration& config, const SymmetricTask& task, int t_max,
    const PortAssignment& ports,
    MessageVariant variant = MessageVariant::kPortTagged);

struct MonteCarloEstimate {
  double p_hat = 0.0;
  double std_error = 0.0;
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
};

/// Monte-Carlo estimate of Pr[S(t) | α]; `ports` selects the
/// message-passing model, otherwise blackboard.
MonteCarloEstimate monte_carlo_solve_probability(
    const SourceConfiguration& config, const SymmetricTask& task, int time,
    const std::optional<PortAssignment>& ports, std::uint64_t trials,
    std::uint64_t seed);

/// The closed-form lower bound from the proof of Theorem 4.1 ('if'
/// direction) for a configuration with k sources, one of load 1:
/// p(t) ≥ (2^t − 1)^{k−1} / 2^{t(k−1)} ≥ 1 − (k−1)/2^t.
double theorem41_rate_lower_bound(int num_sources, int time);

}  // namespace rsb
