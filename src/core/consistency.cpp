#include "core/consistency.hpp"

#include "util/error.hpp"
#include "util/partitions.hpp"

namespace rsb {

RealizationComplex complex_from_partition(const Realization& realization,
                                          const std::vector<int>& partition) {
  if (static_cast<int>(partition.size()) != realization.num_parties()) {
    throw InvalidArgument("complex_from_partition: size mismatch");
  }
  const int blocks = block_count(partition);
  RealizationComplex out;
  for (int b = 0; b < blocks; ++b) {
    std::vector<Vertex<BitString>> verts;
    for (int party = 0; party < realization.num_parties(); ++party) {
      if (partition[static_cast<std::size_t>(party)] == b) {
        verts.push_back(
            Vertex<BitString>{party, realization.string_of(party)});
      }
    }
    out.add_simplex(Simplex<BitString>(std::move(verts)));
  }
  return out;
}

std::vector<int> consistency_partition_blackboard(
    KnowledgeStore& store, const Realization& realization) {
  return knowledge_partition(knowledge_at_blackboard(store, realization));
}

std::vector<int> consistency_partition_message_passing(
    KnowledgeStore& store, const Realization& realization,
    const PortAssignment& ports, MessageVariant variant) {
  return knowledge_partition(
      knowledge_at_message_passing(store, realization, ports, variant));
}

RealizationComplex consistency_complex_blackboard(
    KnowledgeStore& store, const Realization& realization) {
  return complex_from_partition(
      realization, consistency_partition_blackboard(store, realization));
}

RealizationComplex consistency_complex_message_passing(
    KnowledgeStore& store, const Realization& realization,
    const PortAssignment& ports, MessageVariant variant) {
  return complex_from_partition(
      realization, consistency_partition_message_passing(store, realization,
                                                         ports, variant));
}

}  // namespace rsb
