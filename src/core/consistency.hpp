// The knowledge-consistency projection π̃ (Eq. 5).
//
// For a facet ρ = {(i, x_i)} of R(t), π̃(ρ) is the complex on V(ρ) in which
// {(i, x_i) : i ∈ I} is a simplex iff all parties of I are pairwise
// consistent, i ~_t j ⇔ K_i(t) = K_j(t). Once the realization is fixed the
// relation is deterministic; it depends on the communication model and — in
// the message-passing model — on the port assignment (Section 3.3).
//
// The facets of π̃(ρ) are exactly the classes of the knowledge partition, so
// the projection is computed by running the model's knowledge recursion and
// grouping parties with equal (interned) knowledge.
#pragma once

#include <vector>

#include "knowledge/knowledge.hpp"
#include "model/models.hpp"
#include "protocol/complexes.hpp"
#include "randomness/realization.hpp"
#include "topology/topology.hpp"

namespace rsb {

/// Builds the complex whose facets are the partition's classes, with vertex
/// (i, x_i) for each party. `partition` is in canonical block-index form.
RealizationComplex complex_from_partition(const Realization& realization,
                                          const std::vector<int>& partition);

/// The consistency partition of ρ in the blackboard model. Equal to the
/// equal-string partition of ρ (Section 4.1: on the blackboard, knowledge
/// equality is randomness equality); computed here through the full
/// knowledge recursion so tests can confirm that claim independently.
std::vector<int> consistency_partition_blackboard(KnowledgeStore& store,
                                                  const Realization& realization);

/// The consistency partition of ρ in the message-passing model under the
/// given port assignment.
std::vector<int> consistency_partition_message_passing(
    KnowledgeStore& store, const Realization& realization,
    const PortAssignment& ports,
    MessageVariant variant = MessageVariant::kPortTagged);

/// π̃(ρ) in the blackboard model.
RealizationComplex consistency_complex_blackboard(KnowledgeStore& store,
                                                  const Realization& realization);

/// π̃(ρ) in the message-passing model under the given ports.
RealizationComplex consistency_complex_message_passing(
    KnowledgeStore& store, const Realization& realization,
    const PortAssignment& ports,
    MessageVariant variant = MessageVariant::kPortTagged);

}  // namespace rsb
