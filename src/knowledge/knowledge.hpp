// Hash-consed knowledge values.
//
// The paper's full-information protocol makes every party's state at time t
// its *knowledge* K_i(t), defined recursively (Section 2.2):
//
//   blackboard (Eq. 1):       K_i(t) = (K_i(t−1), X_i(t), {K_j(t−1) : j≠i})
//                             where {...} is a multiset (anonymous board),
//   message passing (Eq. 2):  K_i(t) = (K_i(t−1), X_i(t),
//                             (K_{π_i(1)}(t−1), ..., K_{π_i(n−1)}(t−1)))
//                             an ordered tuple indexed by port number.
//
// Written out, K_i(t) grows exponentially with t. The only operation the
// framework needs, however, is *equality* — the consistency relation
// i ~_t j ⇔ K_i(t) = K_j(t) (Eq. 4). We therefore intern knowledge values
// in a KnowledgeStore: structurally equal values receive the same id, so
// equality is id comparison, and memory is proportional to the number of
// distinct sub-values, not to the written-out size.
//
// Data layout (the zero-copy core): a node's received tuple and tag list
// live in two flat pools shared by all nodes — a node stores offsets, not
// vectors — so interning a new value appends to the pools instead of
// allocating, and reset() recycles everything in place. Step values can be
// interned from *borrowed* storage (spans): the store probes with the
// caller's buffer and copies into the pools only on first insertion, so a
// steady-state batch sweep runs the whole knowledge recursion without
// touching the allocator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/hash.hpp"

namespace rsb {

/// Identifier of an interned knowledge value; equality of ids is equality of
/// knowledge.
using KnowledgeId = std::uint32_t;

enum class KnowledgeKind : std::uint8_t {
  kBottom,          // ⊥: no input, time 0
  kInput,           // K_i(0) = v_i for input-output tasks (Appendix C)
  kBlackboardStep,  // Eq. (1)
  kMessageStep,     // Eq. (2)
  kSilence,         // a crashed channel: the Eq. (2) tuple entry for a
                    // port whose sender has halted (crash-stop faults on
                    // the knowledge backend). Interned lazily, so
                    // fault-free id sequences are untouched.
};

// A KnowledgeStore is single-threaded mutable state, and a KnowledgeId is
// meaningful only relative to the store that interned it: two stores hand
// out ids in their own insertion orders, so ids must never be compared or
// dereferenced across stores (see DESIGN.md, "Concurrency model"). Parallel
// drivers give every worker its own store.
class KnowledgeStore {
 public:
  KnowledgeStore();

  /// Forgets every interned value (except ⊥, which is re-created with id 0)
  /// while keeping the underlying table and pool storage. After reset() the
  /// store is observationally identical to a freshly constructed one — ids
  /// are handed out in the same insertion order — so batch drivers such as
  /// the experiment Engine can reuse one store across runs without
  /// perturbing id-based canonical orders. Node, pool and index storage is
  /// pre-sized from the high-water mark over all previous resets, so
  /// steady-state runs of a sweep allocate nothing.
  void reset();

  /// Adopts another store's high-water sizing without copying any values:
  /// the next reset() pre-sizes nodes, pools and index as if this store had
  /// already seen runs as large as `other`'s largest. Batch drivers warm
  /// freshly added lane stores from the engine's long-lived serial store so
  /// the first batched sweep allocates like a steady-state one.
  void adopt_peaks(const KnowledgeStore& other) noexcept;

  /// The unique ⊥ value (always id 0).
  KnowledgeId bottom() const noexcept { return 0; }

  /// The distinguished "silence" value marking a crashed channel in the
  /// Eq. (2) tuple. Interned on first use (never eagerly), so runs that
  /// need no silence hand out exactly the historical id sequence.
  KnowledgeId silence();

  /// K_i(0) = v for an input value v.
  KnowledgeId input(std::int64_t value);

  /// Eq. (1). `others` is the multiset {K_j(t−1) : j ≠ i}; it is sorted
  /// internally, so callers may pass it in any order. The blackboard is
  /// anonymous — only the multiset matters — and the paper's lexicographic
  /// board order corresponds to this canonical sorting.
  KnowledgeId blackboard_step(KnowledgeId prev, bool bit,
                              std::vector<KnowledgeId> others);

  /// Eq. (1) zero-copy path for batch drivers: `others_sorted` must
  /// already be sorted ascending. The value is probed with the borrowed
  /// storage and only copied into the pools on first insertion. Ids (and
  /// insertion order) are identical to
  /// blackboard_step(prev, bit, {others_sorted...}).
  KnowledgeId blackboard_step_sorted(KnowledgeId prev, bool bit,
                                     std::span<const KnowledgeId> others_sorted);

  /// Eq. (2), literal form. `by_port[p]` is the knowledge received on port
  /// p+1; the tuple order is significant (ports are local names for
  /// channels).
  KnowledgeId message_step(KnowledgeId prev, bool bit,
                           std::vector<KnowledgeId> by_port);

  /// Eq. (2), port-tagged form: the message received on port p+1 also
  /// carries the *sender's* port number for the shared edge (`tags[p]`).
  /// A full-information sender knows which of its ports it transmits on and
  /// includes it; this reciprocal tag is what lets a receiver simulate
  /// selective-send protocols such as CreateMatching (Algorithm 1). See
  /// DESIGN.md — with the untagged literal reading of Eq. (2), the 'if'
  /// direction of Theorem 4.2 admits a counterexample wiring.
  KnowledgeId message_step_tagged(KnowledgeId prev, bool bit,
                                  std::vector<KnowledgeId> by_port,
                                  std::vector<int> tags);

  /// Eq. (2) zero-copy path with borrowed storage: `by_port` is the
  /// port-ordered tuple, `tags` the reciprocal port numbers (pass an empty
  /// span for the untagged literal variant). Copies into the pools only on
  /// first insertion; ids identical to the vector-taking overloads.
  KnowledgeId message_step_view(KnowledgeId prev, bool bit,
                                std::span<const KnowledgeId> by_port,
                                std::span<const int> tags);

  /// The reciprocal port tags; empty for untagged steps. The span borrows
  /// pool storage: valid until the next mutating call on this store.
  std::span<const int> tags(KnowledgeId id) const;

  KnowledgeKind kind(KnowledgeId id) const;

  /// The K(t−1) component; only for step kinds.
  KnowledgeId previous(KnowledgeId id) const;

  /// The X(t) component; only for step kinds.
  bool bit(KnowledgeId id) const;

  /// The received knowledge (sorted multiset for blackboard, port-ordered
  /// tuple for message passing); only for step kinds. The span borrows
  /// pool storage: valid until the next mutating call on this store.
  std::span<const KnowledgeId> received(KnowledgeId id) const;

  /// The input value; only for kInput.
  std::int64_t input_value(KnowledgeId id) const;

  /// The time t such that this value is a K(t): 0 for ⊥/input, 1 + time of
  /// the previous component otherwise.
  int time(KnowledgeId id) const;

  /// The randomness string x(1..t) embedded in the value — the map h of
  /// Section 3.3 recovers exactly this.
  std::vector<bool> randomness(KnowledgeId id) const;

  /// Number of distinct interned values (diagnostics / benchmarks).
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Structural rendering with ids, e.g. "#5=(prev=#2,bit=1,[#2,#3])".
  /// Shallow: children are shown as ids.
  std::string to_string(KnowledgeId id) const;

 private:
  /// A node's identity-defining fields; received/tags live in the shared
  /// flat pools, referenced by offset — no per-node allocations.
  struct Node {
    KnowledgeKind kind;
    bool bit = false;
    KnowledgeId prev = 0;
    std::int64_t input = 0;
    std::uint32_t received_offset = 0;
    std::uint32_t received_size = 0;
    std::uint32_t tags_offset = 0;
    std::uint32_t tags_size = 0;
    int time = 0;
  };

  /// Borrowed view of a candidate node, used to probe the intern index
  /// without materializing anything.
  struct NodeShape {
    KnowledgeKind kind;
    bool bit = false;
    KnowledgeId prev = 0;
    std::int64_t input = 0;
    std::span<const KnowledgeId> received;
    std::span<const int> tags;
    int time = 0;  // not identity-defining; stored on insertion
  };

  /// Probes with the borrowed shape; appends the spans to the pools on
  /// first insertion.
  KnowledgeId intern_shape(const NodeShape& shape);
  std::uint64_t shape_hash(const NodeShape& shape) const;
  bool shape_equal(const Node& a, const NodeShape& b) const;
  const Node& node(KnowledgeId id) const;
  std::span<const KnowledgeId> node_received(const Node& n) const noexcept {
    return {received_pool_.data() + n.received_offset, n.received_size};
  }
  std::span<const int> node_tags(const Node& n) const noexcept {
    return {tags_pool_.data() + n.tags_offset, n.tags_size};
  }
  void grow_slots();

  // The intern index is a flat open-addressed table of ids (linear probing,
  // power-of-two size, kEmptySlot = vacant) over nodes_, with the hash of
  // each node cached in hashes_. Unlike a node-based unordered_map of
  // bucket vectors, reset() can vacate it with one fill — no per-bucket
  // deallocation — so a batch driver that resets the store between runs
  // stops touching the allocator once the largest run has been seen.
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> hashes_;        // shape_hash per node, index = id
  std::vector<KnowledgeId> received_pool_;   // all nodes' received tuples
  std::vector<int> tags_pool_;               // all nodes' tag lists
  std::vector<KnowledgeId> slots_;           // open-addressed index into nodes_
  std::size_t peak_nodes_ = 0;               // high-water across resets
  std::size_t peak_received_ = 0;
  std::size_t peak_tags_ = 0;
};

}  // namespace rsb
