// Hash-consed knowledge values.
//
// The paper's full-information protocol makes every party's state at time t
// its *knowledge* K_i(t), defined recursively (Section 2.2):
//
//   blackboard (Eq. 1):       K_i(t) = (K_i(t−1), X_i(t), {K_j(t−1) : j≠i})
//                             where {...} is a multiset (anonymous board),
//   message passing (Eq. 2):  K_i(t) = (K_i(t−1), X_i(t),
//                             (K_{π_i(1)}(t−1), ..., K_{π_i(n−1)}(t−1)))
//                             an ordered tuple indexed by port number.
//
// Written out, K_i(t) grows exponentially with t. The only operation the
// framework needs, however, is *equality* — the consistency relation
// i ~_t j ⇔ K_i(t) = K_j(t) (Eq. 4). We therefore intern knowledge values
// in a KnowledgeStore: structurally equal values receive the same id, so
// equality is id comparison, and memory is proportional to the number of
// distinct sub-values, not to the written-out size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/hash.hpp"

namespace rsb {

/// Identifier of an interned knowledge value; equality of ids is equality of
/// knowledge.
using KnowledgeId = std::uint32_t;

enum class KnowledgeKind : std::uint8_t {
  kBottom,          // ⊥: no input, time 0
  kInput,           // K_i(0) = v_i for input-output tasks (Appendix C)
  kBlackboardStep,  // Eq. (1)
  kMessageStep,     // Eq. (2)
};

// A KnowledgeStore is single-threaded mutable state, and a KnowledgeId is
// meaningful only relative to the store that interned it: two stores hand
// out ids in their own insertion orders, so ids must never be compared or
// dereferenced across stores (see DESIGN.md, "Concurrency model"). Parallel
// drivers give every worker its own store.
class KnowledgeStore {
 public:
  KnowledgeStore();

  /// Forgets every interned value (except ⊥, which is re-created with id 0)
  /// while keeping the underlying table storage. After reset() the store is
  /// observationally identical to a freshly constructed one — ids are
  /// handed out in the same insertion order — so batch drivers such as the
  /// experiment Engine can reuse one store across runs without perturbing
  /// id-based canonical orders. The node and index storage is pre-sized
  /// from the high-water mark over all previous resets, so steady-state
  /// runs of a sweep allocate nothing.
  void reset();

  /// The unique ⊥ value (always id 0).
  KnowledgeId bottom() const noexcept { return 0; }

  /// K_i(0) = v for an input value v.
  KnowledgeId input(std::int64_t value);

  /// Eq. (1). `others` is the multiset {K_j(t−1) : j ≠ i}; it is sorted
  /// internally, so callers may pass it in any order. The blackboard is
  /// anonymous — only the multiset matters — and the paper's lexicographic
  /// board order corresponds to this canonical sorting.
  KnowledgeId blackboard_step(KnowledgeId prev, bool bit,
                              std::vector<KnowledgeId> others);

  /// Eq. (2), literal form. `by_port[p]` is the knowledge received on port
  /// p+1; the tuple order is significant (ports are local names for
  /// channels).
  KnowledgeId message_step(KnowledgeId prev, bool bit,
                           std::vector<KnowledgeId> by_port);

  /// Eq. (2), port-tagged form: the message received on port p+1 also
  /// carries the *sender's* port number for the shared edge (`tags[p]`).
  /// A full-information sender knows which of its ports it transmits on and
  /// includes it; this reciprocal tag is what lets a receiver simulate
  /// selective-send protocols such as CreateMatching (Algorithm 1). See
  /// DESIGN.md — with the untagged literal reading of Eq. (2), the 'if'
  /// direction of Theorem 4.2 admits a counterexample wiring.
  KnowledgeId message_step_tagged(KnowledgeId prev, bool bit,
                                  std::vector<KnowledgeId> by_port,
                                  std::vector<int> tags);

  /// The reciprocal port tags; empty for untagged steps.
  const std::vector<int>& tags(KnowledgeId id) const;

  KnowledgeKind kind(KnowledgeId id) const;

  /// The K(t−1) component; only for step kinds.
  KnowledgeId previous(KnowledgeId id) const;

  /// The X(t) component; only for step kinds.
  bool bit(KnowledgeId id) const;

  /// The received knowledge (sorted multiset for blackboard, port-ordered
  /// tuple for message passing); only for step kinds.
  const std::vector<KnowledgeId>& received(KnowledgeId id) const;

  /// The input value; only for kInput.
  std::int64_t input_value(KnowledgeId id) const;

  /// The time t such that this value is a K(t): 0 for ⊥/input, 1 + time of
  /// the previous component otherwise.
  int time(KnowledgeId id) const;

  /// The randomness string x(1..t) embedded in the value — the map h of
  /// Section 3.3 recovers exactly this.
  std::vector<bool> randomness(KnowledgeId id) const;

  /// Number of distinct interned values (diagnostics / benchmarks).
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Structural rendering with ids, e.g. "#5=(prev=#2,bit=1,[#2,#3])".
  /// Shallow: children are shown as ids.
  std::string to_string(KnowledgeId id) const;

 private:
  struct Node {
    KnowledgeKind kind;
    bool bit = false;
    KnowledgeId prev = 0;
    std::int64_t input = 0;
    std::vector<KnowledgeId> received;
    std::vector<int> tags;  // reciprocal port numbers; empty if untagged
    int time = 0;
  };

  KnowledgeId intern(Node node);
  std::uint64_t node_hash(const Node& node) const;
  bool node_equal(const Node& a, const Node& b) const;
  const Node& node(KnowledgeId id) const;
  void grow_slots();

  // The intern index is a flat open-addressed table of ids (linear probing,
  // power-of-two size, kEmptySlot = vacant) over nodes_, with the hash of
  // each node cached in hashes_. Unlike a node-based unordered_map of
  // bucket vectors, reset() can vacate it with one fill — no per-bucket
  // deallocation — so a batch driver that resets the store between runs
  // stops touching the allocator once the largest run has been seen.
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> hashes_;  // node_hash(nodes_[id]), index = id
  std::vector<KnowledgeId> slots_;     // open-addressed index into nodes_
  std::size_t peak_nodes_ = 0;         // high-water across resets
};

}  // namespace rsb
