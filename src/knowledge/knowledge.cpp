#include "knowledge/knowledge.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsb {

namespace {
constexpr KnowledgeId kEmptySlot = static_cast<KnowledgeId>(-1);
constexpr std::size_t kInitialSlots = 64;  // power of two

/// Smallest power-of-two table that holds `nodes` entries at load <= 1/2.
std::size_t table_size_for(std::size_t nodes) {
  std::size_t wanted = kInitialSlots;
  while (wanted < (nodes + 1) * 2) wanted *= 2;
  return wanted;
}
}  // namespace

KnowledgeStore::KnowledgeStore() { reset(); }

void KnowledgeStore::reset() {
  // clear() keeps the vectors' storage and the slot table is vacated in
  // place, so repeated runs through one store stop allocating once the
  // largest run has been seen; the reserve()s from the high-water mark
  // additionally spare a store that has only seen small runs the growth
  // reallocations when a deep recursion arrives. Reserve id 0 for ⊥.
  peak_nodes_ = std::max(peak_nodes_, nodes_.size());
  nodes_.clear();
  hashes_.clear();
  nodes_.reserve(peak_nodes_);
  hashes_.reserve(peak_nodes_);
  const std::size_t wanted = table_size_for(peak_nodes_);
  if (slots_.size() < wanted) {
    slots_.assign(wanted, kEmptySlot);
  } else {
    std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  }
  Node bottom;
  bottom.kind = KnowledgeKind::kBottom;
  intern(std::move(bottom));
}

KnowledgeId KnowledgeStore::input(std::int64_t value) {
  Node node;
  node.kind = KnowledgeKind::kInput;
  node.input = value;
  return intern(std::move(node));
}

KnowledgeId KnowledgeStore::blackboard_step(KnowledgeId prev, bool bit,
                                            std::vector<KnowledgeId> others) {
  Node node;
  node.kind = KnowledgeKind::kBlackboardStep;
  node.prev = prev;
  node.bit = bit;
  std::sort(others.begin(), others.end());  // multiset canonicalization
  node.received = std::move(others);
  node.time = time(prev) + 1;
  return intern(std::move(node));
}

KnowledgeId KnowledgeStore::message_step(KnowledgeId prev, bool bit,
                                         std::vector<KnowledgeId> by_port) {
  Node node;
  node.kind = KnowledgeKind::kMessageStep;
  node.prev = prev;
  node.bit = bit;
  node.received = std::move(by_port);  // port order is significant
  node.time = time(prev) + 1;
  return intern(std::move(node));
}

KnowledgeId KnowledgeStore::message_step_tagged(KnowledgeId prev, bool bit,
                                                std::vector<KnowledgeId> by_port,
                                                std::vector<int> tags) {
  if (tags.size() != by_port.size()) {
    throw InvalidArgument(
        "KnowledgeStore::message_step_tagged: tags/ports size mismatch");
  }
  Node node;
  node.kind = KnowledgeKind::kMessageStep;
  node.prev = prev;
  node.bit = bit;
  node.received = std::move(by_port);
  node.tags = std::move(tags);
  node.time = time(prev) + 1;
  return intern(std::move(node));
}

const std::vector<int>& KnowledgeStore::tags(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::tags: not a message step");
  }
  return n.tags;
}

KnowledgeKind KnowledgeStore::kind(KnowledgeId id) const {
  return node(id).kind;
}

KnowledgeId KnowledgeStore::previous(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::previous: not a step value");
  }
  return n.prev;
}

bool KnowledgeStore::bit(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::bit: not a step value");
  }
  return n.bit;
}

const std::vector<KnowledgeId>& KnowledgeStore::received(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::received: not a step value");
  }
  return n.received;
}

std::int64_t KnowledgeStore::input_value(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kInput) {
    throw InvalidArgument("KnowledgeStore::input_value: not an input value");
  }
  return n.input;
}

int KnowledgeStore::time(KnowledgeId id) const { return node(id).time; }

std::vector<bool> KnowledgeStore::randomness(KnowledgeId id) const {
  std::vector<bool> bits;
  KnowledgeId current = id;
  while (kind(current) == KnowledgeKind::kBlackboardStep ||
         kind(current) == KnowledgeKind::kMessageStep) {
    bits.push_back(bit(current));
    current = previous(current);
  }
  std::reverse(bits.begin(), bits.end());
  return bits;
}

std::string KnowledgeStore::to_string(KnowledgeId id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case KnowledgeKind::kBottom:
      return "⊥";
    case KnowledgeKind::kInput:
      return "in(" + std::to_string(n.input) + ")";
    case KnowledgeKind::kBlackboardStep:
    case KnowledgeKind::kMessageStep: {
      std::string out = "#" + std::to_string(id) + "=(prev=#" +
                        std::to_string(n.prev) +
                        ",bit=" + (n.bit ? "1" : "0") + ",";
      out += n.kind == KnowledgeKind::kBlackboardStep ? "{" : "(";
      for (std::size_t i = 0; i < n.received.size(); ++i) {
        if (i != 0) out += ",";
        out += "#" + std::to_string(n.received[i]);
      }
      out += n.kind == KnowledgeKind::kBlackboardStep ? "}" : ")";
      return out + ")";
    }
  }
  return "?";
}

KnowledgeId KnowledgeStore::intern(Node new_node) {
  const std::uint64_t h = node_hash(new_node);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    const KnowledgeId occupant = slots_[i];
    if (occupant == kEmptySlot) break;
    if (hashes_[occupant] == h && node_equal(nodes_[occupant], new_node)) {
      return occupant;
    }
    i = (i + 1) & mask;
  }
  const KnowledgeId id = static_cast<KnowledgeId>(nodes_.size());
  nodes_.push_back(std::move(new_node));
  hashes_.push_back(h);
  slots_[i] = id;
  // Keep the load factor at most 1/2 so probe chains stay short. (The
  // constant-time check is equivalent to table_size_for(nodes_.size()) >
  // slots_.size() because slots_.size() is always a power of two >=
  // kInitialSlots — don't pay the sizing loop on the hot path.)
  if ((nodes_.size() + 1) * 2 > slots_.size()) grow_slots();
  return id;
}

void KnowledgeStore::grow_slots() {
  std::vector<KnowledgeId> bigger(table_size_for(nodes_.size()), kEmptySlot);
  const std::size_t mask = bigger.size() - 1;
  for (KnowledgeId id = 0; id < static_cast<KnowledgeId>(nodes_.size());
       ++id) {
    std::size_t i = static_cast<std::size_t>(hashes_[id]) & mask;
    while (bigger[i] != kEmptySlot) i = (i + 1) & mask;
    bigger[i] = id;
  }
  slots_ = std::move(bigger);
}

std::uint64_t KnowledgeStore::node_hash(const Node& n) const {
  std::uint64_t seed = mix64(static_cast<std::uint64_t>(n.kind));
  seed = hash_combine(seed, static_cast<std::uint64_t>(n.bit));
  seed = hash_combine(seed, n.prev);
  seed = hash_combine(seed, static_cast<std::uint64_t>(n.input));
  seed = hash_range(n.received.begin(), n.received.end(), seed);
  return hash_range(n.tags.begin(), n.tags.end(), seed);
}

bool KnowledgeStore::node_equal(const Node& a, const Node& b) const {
  return a.kind == b.kind && a.bit == b.bit && a.prev == b.prev &&
         a.input == b.input && a.received == b.received && a.tags == b.tags;
}

const KnowledgeStore::Node& KnowledgeStore::node(KnowledgeId id) const {
  if (id >= nodes_.size()) {
    throw InvalidArgument("KnowledgeStore: unknown id " + std::to_string(id));
  }
  return nodes_[id];
}

}  // namespace rsb
