#include "knowledge/knowledge.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsb {

KnowledgeStore::KnowledgeStore() { reset(); }

void KnowledgeStore::reset() {
  // clear() keeps the vector's and the hash table's storage, so repeated
  // runs through one store stop allocating once the largest run has been
  // seen. Reserve id 0 for ⊥.
  nodes_.clear();
  by_hash_.clear();
  Node bottom;
  bottom.kind = KnowledgeKind::kBottom;
  nodes_.push_back(bottom);
  by_hash_[node_hash(nodes_.front())].push_back(0);
}

KnowledgeId KnowledgeStore::input(std::int64_t value) {
  Node node;
  node.kind = KnowledgeKind::kInput;
  node.input = value;
  return intern(std::move(node));
}

KnowledgeId KnowledgeStore::blackboard_step(KnowledgeId prev, bool bit,
                                            std::vector<KnowledgeId> others) {
  Node node;
  node.kind = KnowledgeKind::kBlackboardStep;
  node.prev = prev;
  node.bit = bit;
  std::sort(others.begin(), others.end());  // multiset canonicalization
  node.received = std::move(others);
  node.time = time(prev) + 1;
  return intern(std::move(node));
}

KnowledgeId KnowledgeStore::message_step(KnowledgeId prev, bool bit,
                                         std::vector<KnowledgeId> by_port) {
  Node node;
  node.kind = KnowledgeKind::kMessageStep;
  node.prev = prev;
  node.bit = bit;
  node.received = std::move(by_port);  // port order is significant
  node.time = time(prev) + 1;
  return intern(std::move(node));
}

KnowledgeId KnowledgeStore::message_step_tagged(KnowledgeId prev, bool bit,
                                                std::vector<KnowledgeId> by_port,
                                                std::vector<int> tags) {
  if (tags.size() != by_port.size()) {
    throw InvalidArgument(
        "KnowledgeStore::message_step_tagged: tags/ports size mismatch");
  }
  Node node;
  node.kind = KnowledgeKind::kMessageStep;
  node.prev = prev;
  node.bit = bit;
  node.received = std::move(by_port);
  node.tags = std::move(tags);
  node.time = time(prev) + 1;
  return intern(std::move(node));
}

const std::vector<int>& KnowledgeStore::tags(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::tags: not a message step");
  }
  return n.tags;
}

KnowledgeKind KnowledgeStore::kind(KnowledgeId id) const {
  return node(id).kind;
}

KnowledgeId KnowledgeStore::previous(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::previous: not a step value");
  }
  return n.prev;
}

bool KnowledgeStore::bit(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::bit: not a step value");
  }
  return n.bit;
}

const std::vector<KnowledgeId>& KnowledgeStore::received(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::received: not a step value");
  }
  return n.received;
}

std::int64_t KnowledgeStore::input_value(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kInput) {
    throw InvalidArgument("KnowledgeStore::input_value: not an input value");
  }
  return n.input;
}

int KnowledgeStore::time(KnowledgeId id) const { return node(id).time; }

std::vector<bool> KnowledgeStore::randomness(KnowledgeId id) const {
  std::vector<bool> bits;
  KnowledgeId current = id;
  while (kind(current) == KnowledgeKind::kBlackboardStep ||
         kind(current) == KnowledgeKind::kMessageStep) {
    bits.push_back(bit(current));
    current = previous(current);
  }
  std::reverse(bits.begin(), bits.end());
  return bits;
}

std::string KnowledgeStore::to_string(KnowledgeId id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case KnowledgeKind::kBottom:
      return "⊥";
    case KnowledgeKind::kInput:
      return "in(" + std::to_string(n.input) + ")";
    case KnowledgeKind::kBlackboardStep:
    case KnowledgeKind::kMessageStep: {
      std::string out = "#" + std::to_string(id) + "=(prev=#" +
                        std::to_string(n.prev) +
                        ",bit=" + (n.bit ? "1" : "0") + ",";
      out += n.kind == KnowledgeKind::kBlackboardStep ? "{" : "(";
      for (std::size_t i = 0; i < n.received.size(); ++i) {
        if (i != 0) out += ",";
        out += "#" + std::to_string(n.received[i]);
      }
      out += n.kind == KnowledgeKind::kBlackboardStep ? "}" : ")";
      return out + ")";
    }
  }
  return "?";
}

KnowledgeId KnowledgeStore::intern(Node new_node) {
  const std::uint64_t h = node_hash(new_node);
  auto& bucket = by_hash_[h];
  for (KnowledgeId id : bucket) {
    if (node_equal(nodes_[id], new_node)) return id;
  }
  const KnowledgeId id = static_cast<KnowledgeId>(nodes_.size());
  nodes_.push_back(std::move(new_node));
  bucket.push_back(id);
  return id;
}

std::uint64_t KnowledgeStore::node_hash(const Node& n) const {
  std::uint64_t seed = mix64(static_cast<std::uint64_t>(n.kind));
  seed = hash_combine(seed, static_cast<std::uint64_t>(n.bit));
  seed = hash_combine(seed, n.prev);
  seed = hash_combine(seed, static_cast<std::uint64_t>(n.input));
  seed = hash_range(n.received.begin(), n.received.end(), seed);
  return hash_range(n.tags.begin(), n.tags.end(), seed);
}

bool KnowledgeStore::node_equal(const Node& a, const Node& b) const {
  return a.kind == b.kind && a.bit == b.bit && a.prev == b.prev &&
         a.input == b.input && a.received == b.received && a.tags == b.tags;
}

const KnowledgeStore::Node& KnowledgeStore::node(KnowledgeId id) const {
  if (id >= nodes_.size()) {
    throw InvalidArgument("KnowledgeStore: unknown id " + std::to_string(id));
  }
  return nodes_[id];
}

}  // namespace rsb
