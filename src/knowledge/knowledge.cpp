#include "knowledge/knowledge.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsb {

namespace {
constexpr KnowledgeId kEmptySlot = static_cast<KnowledgeId>(-1);
constexpr std::size_t kInitialSlots = 64;  // power of two

/// Smallest power-of-two table that holds `nodes` entries at load <= 1/2.
std::size_t table_size_for(std::size_t nodes) {
  std::size_t wanted = kInitialSlots;
  while (wanted < (nodes + 1) * 2) wanted *= 2;
  return wanted;
}
}  // namespace

KnowledgeStore::KnowledgeStore() { reset(); }

void KnowledgeStore::reset() {
  // clear() keeps the vectors' storage and the slot table is vacated in
  // place, so repeated runs through one store stop allocating once the
  // largest run has been seen; the reserve()s from the high-water mark
  // additionally spare a store that has only seen small runs the growth
  // reallocations when a deep recursion arrives. Reserve id 0 for ⊥.
  peak_nodes_ = std::max(peak_nodes_, nodes_.size());
  peak_received_ = std::max(peak_received_, received_pool_.size());
  peak_tags_ = std::max(peak_tags_, tags_pool_.size());
  nodes_.clear();
  hashes_.clear();
  received_pool_.clear();
  tags_pool_.clear();
  nodes_.reserve(peak_nodes_);
  hashes_.reserve(peak_nodes_);
  received_pool_.reserve(peak_received_);
  tags_pool_.reserve(peak_tags_);
  const std::size_t wanted = table_size_for(peak_nodes_);
  if (slots_.size() < wanted) {
    slots_.assign(wanted, kEmptySlot);
  } else {
    std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  }
  NodeShape bottom;
  bottom.kind = KnowledgeKind::kBottom;
  intern_shape(bottom);
}

void KnowledgeStore::adopt_peaks(const KnowledgeStore& other) noexcept {
  peak_nodes_ = std::max({peak_nodes_, other.peak_nodes_, other.nodes_.size()});
  peak_received_ = std::max(
      {peak_received_, other.peak_received_, other.received_pool_.size()});
  peak_tags_ =
      std::max({peak_tags_, other.peak_tags_, other.tags_pool_.size()});
}

KnowledgeId KnowledgeStore::silence() {
  NodeShape shape;
  shape.kind = KnowledgeKind::kSilence;
  return intern_shape(shape);
}

KnowledgeId KnowledgeStore::input(std::int64_t value) {
  NodeShape shape;
  shape.kind = KnowledgeKind::kInput;
  shape.input = value;
  return intern_shape(shape);
}

KnowledgeId KnowledgeStore::blackboard_step(KnowledgeId prev, bool bit,
                                            std::vector<KnowledgeId> others) {
  std::sort(others.begin(), others.end());  // multiset canonicalization
  return blackboard_step_sorted(prev, bit, others);
}

KnowledgeId KnowledgeStore::blackboard_step_sorted(
    KnowledgeId prev, bool bit, std::span<const KnowledgeId> others_sorted) {
  NodeShape shape;
  shape.kind = KnowledgeKind::kBlackboardStep;
  shape.prev = prev;
  shape.bit = bit;
  shape.received = others_sorted;
  shape.time = time(prev) + 1;
  return intern_shape(shape);
}

KnowledgeId KnowledgeStore::message_step(KnowledgeId prev, bool bit,
                                         std::vector<KnowledgeId> by_port) {
  return message_step_view(prev, bit, by_port, {});
}

KnowledgeId KnowledgeStore::message_step_tagged(KnowledgeId prev, bool bit,
                                                std::vector<KnowledgeId> by_port,
                                                std::vector<int> tags) {
  if (tags.size() != by_port.size()) {
    throw InvalidArgument(
        "KnowledgeStore::message_step_tagged: tags/ports size mismatch");
  }
  return message_step_view(prev, bit, by_port, tags);
}

KnowledgeId KnowledgeStore::message_step_view(KnowledgeId prev, bool bit,
                                              std::span<const KnowledgeId> by_port,
                                              std::span<const int> tags) {
  NodeShape shape;
  shape.kind = KnowledgeKind::kMessageStep;
  shape.prev = prev;
  shape.bit = bit;
  shape.received = by_port;  // port order is significant
  shape.tags = tags;
  shape.time = time(prev) + 1;
  return intern_shape(shape);
}

std::span<const int> KnowledgeStore::tags(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::tags: not a message step");
  }
  return node_tags(n);
}

KnowledgeKind KnowledgeStore::kind(KnowledgeId id) const {
  return node(id).kind;
}

KnowledgeId KnowledgeStore::previous(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::previous: not a step value");
  }
  return n.prev;
}

bool KnowledgeStore::bit(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::bit: not a step value");
  }
  return n.bit;
}

std::span<const KnowledgeId> KnowledgeStore::received(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kBlackboardStep &&
      n.kind != KnowledgeKind::kMessageStep) {
    throw InvalidArgument("KnowledgeStore::received: not a step value");
  }
  return node_received(n);
}

std::int64_t KnowledgeStore::input_value(KnowledgeId id) const {
  const Node& n = node(id);
  if (n.kind != KnowledgeKind::kInput) {
    throw InvalidArgument("KnowledgeStore::input_value: not an input value");
  }
  return n.input;
}

int KnowledgeStore::time(KnowledgeId id) const { return node(id).time; }

std::vector<bool> KnowledgeStore::randomness(KnowledgeId id) const {
  std::vector<bool> bits;
  KnowledgeId current = id;
  while (kind(current) == KnowledgeKind::kBlackboardStep ||
         kind(current) == KnowledgeKind::kMessageStep) {
    bits.push_back(bit(current));
    current = previous(current);
  }
  std::reverse(bits.begin(), bits.end());
  return bits;
}

std::string KnowledgeStore::to_string(KnowledgeId id) const {
  const Node& n = node(id);
  switch (n.kind) {
    case KnowledgeKind::kBottom:
      return "⊥";
    case KnowledgeKind::kSilence:
      return "silence";
    case KnowledgeKind::kInput:
      return "in(" + std::to_string(n.input) + ")";
    case KnowledgeKind::kBlackboardStep:
    case KnowledgeKind::kMessageStep: {
      std::string out = "#" + std::to_string(id) + "=(prev=#" +
                        std::to_string(n.prev) +
                        ",bit=" + (n.bit ? "1" : "0") + ",";
      out += n.kind == KnowledgeKind::kBlackboardStep ? "{" : "(";
      const std::span<const KnowledgeId> received = node_received(n);
      for (std::size_t i = 0; i < received.size(); ++i) {
        if (i != 0) out += ",";
        out += "#" + std::to_string(received[i]);
      }
      out += n.kind == KnowledgeKind::kBlackboardStep ? "}" : ")";
      return out + ")";
    }
  }
  return "?";
}

KnowledgeId KnowledgeStore::intern_shape(const NodeShape& shape) {
  const std::uint64_t h = shape_hash(shape);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    const KnowledgeId occupant = slots_[i];
    if (occupant == kEmptySlot) break;
    if (hashes_[occupant] == h && shape_equal(nodes_[occupant], shape)) {
      return occupant;
    }
    i = (i + 1) & mask;
  }
  // First insertion: materialize the borrowed spans into the flat pools.
  Node node;
  node.kind = shape.kind;
  node.bit = shape.bit;
  node.prev = shape.prev;
  node.input = shape.input;
  node.received_offset = static_cast<std::uint32_t>(received_pool_.size());
  node.received_size = static_cast<std::uint32_t>(shape.received.size());
  node.tags_offset = static_cast<std::uint32_t>(tags_pool_.size());
  node.tags_size = static_cast<std::uint32_t>(shape.tags.size());
  node.time = shape.time;
  received_pool_.insert(received_pool_.end(), shape.received.begin(),
                        shape.received.end());
  tags_pool_.insert(tags_pool_.end(), shape.tags.begin(), shape.tags.end());
  const KnowledgeId id = static_cast<KnowledgeId>(nodes_.size());
  nodes_.push_back(node);
  hashes_.push_back(h);
  slots_[i] = id;
  // Keep the load factor at most 1/2 so probe chains stay short. (The
  // constant-time check is equivalent to table_size_for(nodes_.size()) >
  // slots_.size() because slots_.size() is always a power of two >=
  // kInitialSlots — don't pay the sizing loop on the hot path.)
  if ((nodes_.size() + 1) * 2 > slots_.size()) grow_slots();
  return id;
}

void KnowledgeStore::grow_slots() {
  std::vector<KnowledgeId> bigger(table_size_for(nodes_.size()), kEmptySlot);
  const std::size_t mask = bigger.size() - 1;
  for (KnowledgeId id = 0; id < static_cast<KnowledgeId>(nodes_.size());
       ++id) {
    std::size_t i = static_cast<std::size_t>(hashes_[id]) & mask;
    while (bigger[i] != kEmptySlot) i = (i + 1) & mask;
    bigger[i] = id;
  }
  slots_ = std::move(bigger);
}

std::uint64_t KnowledgeStore::shape_hash(const NodeShape& n) const {
  std::uint64_t seed = mix64(static_cast<std::uint64_t>(n.kind));
  seed = hash_combine(seed, static_cast<std::uint64_t>(n.bit));
  seed = hash_combine(seed, n.prev);
  seed = hash_combine(seed, static_cast<std::uint64_t>(n.input));
  seed = hash_range(n.received.begin(), n.received.end(), seed);
  return hash_range(n.tags.begin(), n.tags.end(), seed);
}

bool KnowledgeStore::shape_equal(const Node& a, const NodeShape& b) const {
  if (a.kind != b.kind || a.bit != b.bit || a.prev != b.prev ||
      a.input != b.input || a.received_size != b.received.size() ||
      a.tags_size != b.tags.size()) {
    return false;
  }
  const std::span<const KnowledgeId> received = node_received(a);
  if (!std::equal(received.begin(), received.end(), b.received.begin())) {
    return false;
  }
  const std::span<const int> tags = node_tags(a);
  return std::equal(tags.begin(), tags.end(), b.tags.begin());
}

const KnowledgeStore::Node& KnowledgeStore::node(KnowledgeId id) const {
  if (id >= nodes_.size()) {
    throw InvalidArgument("KnowledgeStore: unknown id " + std::to_string(id));
  }
  return nodes_[id];
}

}  // namespace rsb
