// Sparse communication topologies: adjacency-driven port wirings.
//
// Every workload before this layer ran on the clique — each party owns
// n−1 ports, one per other party — which makes a broadcast round Θ(n²)
// messages however little the algorithm actually needs to say. The
// locality literature the paper leans on (Barenboim–Elkin–Pettie–
// Schneider, "The Locality of Distributed Symmetry Breaking") lives on
// *sparse* graphs: MIS, (Δ+1)-coloring and ruling sets are interesting
// precisely when a party talks only to its graph neighbors. A Topology is
// the value type that carries such a graph into the simulator: a CSR
// adjacency (sorted neighbor lists) plus the canonical port numbering —
// party p's port k (1-based) leads to its k-th smallest neighbor — so the
// wiring is a pure function of the edge set and per-round delivery costs
// O(edges), not O(n²).
//
// Generators are deterministic in (kind, n, seed): equal parameters build
// byte-identical adjacency on every host (pinned by tests/graph_test.cpp),
// so a topology referenced by name in a canonical spec (service layer)
// reconstructs identically on any peer. The randomized families (random
// d-regular, Erdős–Rényi, Barabási–Albert preferential attachment) draw
// from a private Xoshiro stream seeded by the caller; the structured
// families (clique, ring, path, complete binary tree) ignore the seed.
//
// TopologyRegistry mirrors the protocol/task registries
// (engine/registry.hpp): spec strings name a generator with integer
// arguments — "ring", "d-regular(3)", "power-law(2)" — and describe()
// feeds the CLI listings.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace rsb::graph {

enum class TopologyKind {
  kClique,      // all-to-all: the historical wiring, normalized away upstream
  kRing,        // cycle 0–1–…–(n−1)–0
  kPath,        // path 0–1–…–(n−1)
  kTree,        // complete binary tree on heap indices (i ~ (i−1)/2)
  kDRegular,    // random d-regular (configuration model, seeded)
  kErdosRenyi,  // G(n, p) with p = d/(n−1) for a target expected degree d
  kPowerLaw,    // Barabási–Albert preferential attachment, m edges per node
};

std::string to_string(TopologyKind kind);

/// An undirected simple graph on the parties, stored as CSR adjacency
/// with each neighbor list sorted ascending. Ports are the canonical
/// 1-based numbering over that order: neighbor(p, k) is p's k-th smallest
/// neighbor, and port_of(p, q) inverts it by binary search. Immutable
/// after construction; share via shared_ptr (Experiment does).
class Topology {
 public:
  // --- deterministic generators ----------------------------------------
  static Topology clique(int n);        // n >= 1
  static Topology ring(int n);          // n >= 3
  static Topology path(int n);          // n >= 2
  static Topology tree(int n);          // n >= 2
  /// Random d-regular via the configuration model: pair up n·d stubs,
  /// resampling until the pairing is simple. Requires 1 <= d < n and
  /// n·d even.
  static Topology d_regular(int n, int degree, std::uint64_t seed);
  /// G(n, p) with p = expected_degree / (n−1). Requires n >= 2 and
  /// 0 <= expected_degree <= n−1. Isolated vertices are possible and
  /// legal (a degree-0 party simply has no ports).
  static Topology erdos_renyi(int n, int expected_degree, std::uint64_t seed);
  /// Barabási–Albert: start from a clique on m+1 vertices, then attach
  /// each new vertex to m distinct existing vertices drawn
  /// degree-proportionally (repeated-endpoint sampling). Requires
  /// 1 <= m < n.
  static Topology power_law(int n, int edges_per_vertex, std::uint64_t seed);

  TopologyKind kind() const noexcept { return kind_; }
  /// The registry spec this topology answers to ("ring", "d-regular(3)").
  const std::string& name() const noexcept { return name_; }
  int num_parties() const noexcept { return num_parties_; }
  /// Undirected edge count.
  std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(adjacency_.size()) / 2;
  }
  int degree(int party) const;
  int max_degree() const noexcept { return max_degree_; }
  /// `party`'s neighbors, sorted ascending.
  std::span<const int> neighbors(int party) const;
  /// The other endpoint of `party`'s 1-based port (its port-th smallest
  /// neighbor). Throws on out-of-range ports.
  int neighbor(int party, int port) const;
  /// The 1-based port of `party` that leads to `to`; throws when the edge
  /// does not exist.
  int port_of(int party, int to) const;
  bool has_edge(int a, int b) const;

  /// True iff every pair of parties is adjacent — the wiring the clique
  /// PortAssignment machinery already provides, which is why upstream
  /// layers normalize clique topologies away entirely.
  bool is_clique() const noexcept;

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  Topology(TopologyKind kind, std::string name, int n,
           const std::vector<std::pair<int, int>>& edges);

  TopologyKind kind_ = TopologyKind::kClique;
  std::string name_;
  int num_parties_ = 0;
  int max_degree_ = 0;
  std::vector<std::int32_t> offsets_;  // CSR: n+1 entries
  std::vector<int> adjacency_;         // sorted per vertex, 2|E| entries
};

/// Name-keyed topology generators, mirroring ProtocolRegistry. Factories
/// receive (num_parties, args, seed); structured generators ignore the
/// seed. Pre-loaded entries:
///   clique, ring, path, tree, d-regular(d), erdos-renyi(d), power-law(m)
class TopologyRegistry {
 public:
  using Factory = std::function<Topology(
      int num_parties, const std::vector<int>& args, std::uint64_t seed)>;

  struct Entry {
    int arity = 0;
    std::string help;
    Factory factory;
  };

  static TopologyRegistry& global();

  void add(const std::string& name, int arity, std::string help,
           Factory factory);
  /// `name` is the bare generator name (no parenthesized arguments).
  bool contains(const std::string& name) const;

  /// Instantiates from a spec string, e.g. "d-regular(3)".
  Topology make(const std::string& spec, int num_parties,
                std::uint64_t seed) const;

  /// True iff the spec's generator draws from the seed (d-regular,
  /// erdos-renyi, power-law) — the service layer uses this to decide
  /// whether topology-seed is a live knob or normalizes away.
  bool is_randomized(const std::string& spec) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// One "name(arity) — help" line per entry, sorted by name.
  std::vector<std::string> describe() const;

 private:
  std::map<std::string, Entry> entries_;
};

/// Shorthand over the global registry; returns a shared immutable
/// instance (the form Experiment::with_topology stores).
std::shared_ptr<const Topology> make_topology(const std::string& spec,
                                              int num_parties,
                                              std::uint64_t seed);

}  // namespace rsb::graph
