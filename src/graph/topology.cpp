#include "graph/topology.hpp"

#include <algorithm>
#include <charconv>
#include <numeric>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsb::graph {

namespace {

/// Parses "name" / "name(3)" — same grammar as the protocol/task
/// registries (integer arguments, no nesting).
struct ParsedSpec {
  std::string name;
  std::vector<int> args;
};

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec parsed;
  const std::size_t open = spec.find('(');
  if (open == std::string::npos) {
    parsed.name = spec;
    return parsed;
  }
  if (spec.back() != ')') {
    throw InvalidArgument("topology: malformed spec '" + spec +
                          "' (missing closing parenthesis)");
  }
  parsed.name = spec.substr(0, open);
  std::size_t pos = open + 1;
  const std::size_t end = spec.size() - 1;
  while (pos < end) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos || comma > end) comma = end;
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(spec.data() + pos, spec.data() + comma, value);
    if (ec != std::errc() || ptr != spec.data() + comma) {
      throw InvalidArgument("topology: malformed integer argument in '" +
                            spec + "'");
    }
    parsed.args.push_back(value);
    if (comma < end && comma + 1 >= end) {
      throw InvalidArgument("topology: trailing comma in '" + spec + "'");
    }
    pos = comma + 1;
  }
  return parsed;
}

std::string canonical_spec(const std::string& name,
                           const std::vector<int>& args) {
  std::string out = name;
  if (!args.empty()) {
    out += '(';
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(args[i]);
    }
    out += ')';
  }
  return out;
}

}  // namespace

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kClique:
      return "clique";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kPath:
      return "path";
    case TopologyKind::kTree:
      return "tree";
    case TopologyKind::kDRegular:
      return "d-regular";
    case TopologyKind::kErdosRenyi:
      return "erdos-renyi";
    case TopologyKind::kPowerLaw:
      return "power-law";
  }
  return "?";
}

// ---------------------------------------------------------------- Topology

Topology::Topology(TopologyKind kind, std::string name, int n,
                   const std::vector<std::pair<int, int>>& edges)
    : kind_(kind), name_(std::move(name)), num_parties_(n) {
  if (n < 1) {
    throw InvalidArgument("Topology: num_parties must be >= 1, got " +
                          std::to_string(n));
  }
  std::vector<std::int32_t> degree(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : edges) {
    if (a < 0 || a >= n || b < 0 || b >= n || a == b) {
      throw ValidationError("Topology: bad edge (" + std::to_string(a) + "," +
                            std::to_string(b) + ") for n=" + std::to_string(n));
    }
    ++degree[static_cast<std::size_t>(a) + 1];
    ++degree[static_cast<std::size_t>(b) + 1];
  }
  offsets_.resize(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + degree[v + 1];
  adjacency_.resize(static_cast<std::size_t>(offsets_[n]));
  std::vector<std::int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    adjacency_[static_cast<std::size_t>(cursor[a]++)] = b;
    adjacency_[static_cast<std::size_t>(cursor[b]++)] = a;
  }
  for (int v = 0; v < n; ++v) {
    const auto first = adjacency_.begin() + offsets_[v];
    const auto last = adjacency_.begin() + offsets_[v + 1];
    std::sort(first, last);
    if (std::adjacent_find(first, last) != last) {
      throw ValidationError("Topology: duplicate edge at vertex " +
                            std::to_string(v));
    }
    max_degree_ = std::max(max_degree_,
                           static_cast<int>(offsets_[v + 1] - offsets_[v]));
  }
}

int Topology::degree(int party) const {
  if (party < 0 || party >= num_parties_) {
    throw InvalidArgument("Topology::degree: party " + std::to_string(party) +
                          " out of range");
  }
  return static_cast<int>(offsets_[party + 1] - offsets_[party]);
}

std::span<const int> Topology::neighbors(int party) const {
  if (party < 0 || party >= num_parties_) {
    throw InvalidArgument("Topology::neighbors: party " +
                          std::to_string(party) + " out of range");
  }
  return std::span<const int>(adjacency_.data() + offsets_[party],
                              adjacency_.data() + offsets_[party + 1]);
}

int Topology::neighbor(int party, int port) const {
  const auto adj = neighbors(party);
  if (port < 1 || port > static_cast<int>(adj.size())) {
    throw InvalidArgument("Topology::neighbor: party " +
                          std::to_string(party) + " has no port " +
                          std::to_string(port) + " (degree " +
                          std::to_string(adj.size()) + ")");
  }
  return adj[static_cast<std::size_t>(port) - 1];
}

int Topology::port_of(int party, int to) const {
  const auto adj = neighbors(party);
  const auto it = std::lower_bound(adj.begin(), adj.end(), to);
  if (it == adj.end() || *it != to) {
    throw InvalidArgument("Topology::port_of: no edge " +
                          std::to_string(party) + "—" + std::to_string(to));
  }
  return static_cast<int>(it - adj.begin()) + 1;
}

bool Topology::has_edge(int a, int b) const {
  if (a < 0 || a >= num_parties_ || b < 0 || b >= num_parties_ || a == b) {
    return false;
  }
  const auto adj = neighbors(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

bool Topology::is_clique() const noexcept {
  return num_edges() ==
         static_cast<std::int64_t>(num_parties_) * (num_parties_ - 1) / 2;
}

// -------------------------------------------------------------- generators

Topology Topology::clique(int n) {
  if (n < 1) {
    throw InvalidArgument("Topology::clique: n must be >= 1, got " +
                          std::to_string(n));
  }
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  }
  return Topology(TopologyKind::kClique, "clique", n, edges);
}

Topology Topology::ring(int n) {
  if (n < 3) {
    throw InvalidArgument("Topology::ring: n must be >= 3, got " +
                          std::to_string(n));
  }
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Topology(TopologyKind::kRing, "ring", n, edges);
}

Topology Topology::path(int n) {
  if (n < 2) {
    throw InvalidArgument("Topology::path: n must be >= 2, got " +
                          std::to_string(n));
  }
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (int v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Topology(TopologyKind::kPath, "path", n, edges);
}

Topology Topology::tree(int n) {
  if (n < 2) {
    throw InvalidArgument("Topology::tree: n must be >= 2, got " +
                          std::to_string(n));
  }
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (int v = 1; v < n; ++v) edges.emplace_back(v, (v - 1) / 2);
  return Topology(TopologyKind::kTree, "tree", n, edges);
}

Topology Topology::d_regular(int n, int degree, std::uint64_t seed) {
  if (degree < 1 || degree >= n) {
    throw InvalidArgument("Topology::d_regular: need 1 <= d < n, got d=" +
                          std::to_string(degree) + " n=" + std::to_string(n));
  }
  if ((static_cast<std::int64_t>(n) * degree) % 2 != 0) {
    throw InvalidArgument("Topology::d_regular: n*d must be even, got n=" +
                          std::to_string(n) + " d=" + std::to_string(degree));
  }
  const std::string name = canonical_spec("d-regular", {degree});
  // Configuration model: n·d stubs (stub s belongs to vertex s/d), paired
  // by a Fisher–Yates shuffle and read off two at a time. A pairing with
  // a self-loop or repeated edge is discarded wholesale and resampled —
  // this keeps the conditional distribution uniform over simple d-regular
  // pairings, which per-edge patch-ups would not.
  Xoshiro256StarStar rng(derive_seed(seed, 0x5ce9));
  std::vector<int> stubs(static_cast<std::size_t>(n) * degree);
  constexpr int kMaxAttempts = 4096;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::iota(stubs.begin(), stubs.end(), 0);
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      std::swap(stubs[i], stubs[rng.below(i + 1)]);
    }
    std::vector<std::pair<int, int>> edges;
    edges.reserve(stubs.size() / 2);
    bool simple = true;
    for (std::size_t i = 0; simple && i < stubs.size(); i += 2) {
      int a = stubs[i] / degree;
      int b = stubs[i + 1] / degree;
      if (a == b) {
        simple = false;
        break;
      }
      if (a > b) std::swap(a, b);
      edges.emplace_back(a, b);
    }
    if (!simple) continue;
    std::sort(edges.begin(), edges.end());
    if (std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
      continue;
    }
    return Topology(TopologyKind::kDRegular, name, n, edges);
  }
  throw ValidationError("Topology::d_regular: no simple pairing after " +
                        std::to_string(kMaxAttempts) + " attempts (n=" +
                        std::to_string(n) + ", d=" + std::to_string(degree) +
                        ")");
}

Topology Topology::erdos_renyi(int n, int expected_degree,
                               std::uint64_t seed) {
  if (n < 2) {
    throw InvalidArgument("Topology::erdos_renyi: n must be >= 2, got " +
                          std::to_string(n));
  }
  if (expected_degree < 0 || expected_degree > n - 1) {
    throw InvalidArgument(
        "Topology::erdos_renyi: need 0 <= expected_degree <= n-1, got " +
        std::to_string(expected_degree));
  }
  const std::string name = canonical_spec("erdos-renyi", {expected_degree});
  const double p =
      static_cast<double>(expected_degree) / static_cast<double>(n - 1);
  Xoshiro256StarStar rng(derive_seed(seed, 0xe12d));
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.uniform01() < p) edges.emplace_back(a, b);
    }
  }
  return Topology(TopologyKind::kErdosRenyi, name, n, edges);
}

Topology Topology::power_law(int n, int edges_per_vertex, std::uint64_t seed) {
  const int m = edges_per_vertex;
  if (m < 1 || m >= n) {
    throw InvalidArgument("Topology::power_law: need 1 <= m < n, got m=" +
                          std::to_string(m) + " n=" + std::to_string(n));
  }
  const std::string name = canonical_spec("power-law", {m});
  // Barabási–Albert with the endpoint-list trick: `endpoints` holds every
  // edge endpoint ever added, so a uniform draw from it is exactly a
  // degree-proportional draw. Seed graph: clique on the first m+1
  // vertices (every vertex has positive degree before attachment starts).
  Xoshiro256StarStar rng(derive_seed(seed, 0xba));
  std::vector<std::pair<int, int>> edges;
  std::vector<int> endpoints;
  for (int a = 0; a <= m; ++a) {
    for (int b = a + 1; b <= m; ++b) {
      edges.emplace_back(a, b);
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  std::vector<int> chosen;
  for (int v = m + 1; v < n; ++v) {
    chosen.clear();
    while (static_cast<int>(chosen.size()) < m) {
      const int target =
          endpoints[static_cast<std::size_t>(rng.below(endpoints.size()))];
      if (std::find(chosen.begin(), chosen.end(), target) == chosen.end()) {
        chosen.push_back(target);
      }
    }
    for (const int target : chosen) {
      edges.emplace_back(target, v);
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
  }
  return Topology(TopologyKind::kPowerLaw, name, n, edges);
}

// ---------------------------------------------------------------- registry

TopologyRegistry& TopologyRegistry::global() {
  static TopologyRegistry* registry = [] {
    auto* r = new TopologyRegistry();
    r->add("clique", 0, "all-to-all wiring (the default; normalized away)",
           [](int n, const std::vector<int>&, std::uint64_t) {
             return Topology::clique(n);
           });
    r->add("ring", 0, "cycle 0–1–…–(n−1)–0",
           [](int n, const std::vector<int>&, std::uint64_t) {
             return Topology::ring(n);
           });
    r->add("path", 0, "path 0–1–…–(n−1)",
           [](int n, const std::vector<int>&, std::uint64_t) {
             return Topology::path(n);
           });
    r->add("tree", 0, "complete binary tree on heap indices",
           [](int n, const std::vector<int>&, std::uint64_t) {
             return Topology::tree(n);
           });
    r->add("d-regular", 1,
           "random d-regular graph (configuration model, seeded); "
           "argument is d",
           [](int n, const std::vector<int>& args, std::uint64_t seed) {
             return Topology::d_regular(n, args[0], seed);
           });
    r->add("erdos-renyi", 1,
           "G(n, p) with p = d/(n−1) (seeded); argument is the expected "
           "degree d",
           [](int n, const std::vector<int>& args, std::uint64_t seed) {
             return Topology::erdos_renyi(n, args[0], seed);
           });
    r->add("power-law", 1,
           "Barabási–Albert preferential attachment (seeded); argument is "
           "edges per new vertex m",
           [](int n, const std::vector<int>& args, std::uint64_t seed) {
             return Topology::power_law(n, args[0], seed);
           });
    return r;
  }();
  return *registry;
}

void TopologyRegistry::add(const std::string& name, int arity,
                           std::string help, Factory factory) {
  if (name.empty() || name.find('(') != std::string::npos) {
    throw InvalidArgument("TopologyRegistry::add: bad name '" + name + "'");
  }
  entries_[name] = Entry{arity, std::move(help), std::move(factory)};
}

bool TopologyRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

Topology TopologyRegistry::make(const std::string& spec, int num_parties,
                                std::uint64_t seed) const {
  const ParsedSpec parsed = parse_spec(spec);
  const auto it = entries_.find(parsed.name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& name : names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw UnknownName("topology registry: unknown name '" + parsed.name +
                      "' (known: " + known + ")");
  }
  if (static_cast<int>(parsed.args.size()) != it->second.arity) {
    throw InvalidArgument("topology '" + parsed.name + "' expects " +
                          std::to_string(it->second.arity) +
                          " argument(s), got " +
                          std::to_string(parsed.args.size()));
  }
  return it->second.factory(num_parties, parsed.args, seed);
}

bool TopologyRegistry::is_randomized(const std::string& spec) const {
  // Prefix match, no parse: callers (canonical_text) ask about specs that
  // may be malformed — the answer for those is "not randomized", and the
  // real error surfaces where make() resolves the spec.
  const std::string name = spec.substr(0, spec.find('('));
  return name == "d-regular" || name == "erdos-renyi" || name == "power-law";
}

std::vector<std::string> TopologyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::vector<std::string> TopologyRegistry::describe() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    std::string line = name;
    if (entry.arity > 0) {
      line += "(";
      for (int i = 0; i < entry.arity; ++i) line += i == 0 ? "_" : ",_";
      line += ")";
    }
    if (!entry.help.empty()) line += " — " + entry.help;
    out.push_back(std::move(line));
  }
  return out;
}

std::shared_ptr<const Topology> make_topology(const std::string& spec,
                                              int num_parties,
                                              std::uint64_t seed) {
  return std::make_shared<const Topology>(
      TopologyRegistry::global().make(spec, num_parties, seed));
}

}  // namespace rsb::graph
