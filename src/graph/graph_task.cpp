#include "graph/graph_task.hpp"

#include <numeric>
#include <utility>

#include "util/error.hpp"

namespace rsb::graph {

namespace {

bool alive_at(std::span<const int> crash_round, int party) {
  // Empty crash_round = fault-free run; the outcome encoding marks a
  // crashed party with its crash round (>= 0).
  return crash_round.empty() || crash_round[static_cast<std::size_t>(party)] < 0;
}

/// No alive–alive edge has both endpoints selected (value 1). Scans each
/// vertex's higher-numbered neighbors so every edge is checked once.
bool independent(const Topology& topo, std::span<const int> values,
                 std::span<const int> crash_round) {
  for (int v = 0; v < topo.num_parties(); ++v) {
    if (values[static_cast<std::size_t>(v)] != 1 || !alive_at(crash_round, v)) {
      continue;
    }
    for (const int u : topo.neighbors(v)) {
      if (u > v && values[static_cast<std::size_t>(u)] == 1 &&
          alive_at(crash_round, u)) {
        return false;
      }
    }
  }
  return true;
}

std::shared_ptr<const Topology> require(std::shared_ptr<const Topology> topo,
                                        const char* what) {
  if (topo == nullptr) {
    throw InvalidArgument(std::string(what) + ": topology must be non-null");
  }
  return topo;
}

}  // namespace

SymmetricTask mis_task(std::shared_ptr<const Topology> topology) {
  auto topo = require(std::move(topology), "mis_task");
  const int n = topo->num_parties();
  return SymmetricTask(
             "mis@" + topo->name(), n, {0, 1},
             [](const std::vector<int>&) { return true; })
      .with_refinement([topo](std::span<const int> values,
                              std::span<const int> crash_round) {
        if (!independent(*topo, values, crash_round)) return false;
        // Maximality over survivors: an alive 0 must see an alive
        // 1-neighbor (a 0 whose only 1-neighbors crashed is a violation —
        // the survivors' set is not maximal on the surviving subgraph).
        for (int v = 0; v < topo->num_parties(); ++v) {
          if (values[static_cast<std::size_t>(v)] != 0 ||
              !alive_at(crash_round, v)) {
            continue;
          }
          bool dominated = false;
          for (const int u : topo->neighbors(v)) {
            if (values[static_cast<std::size_t>(u)] == 1 &&
                alive_at(crash_round, u)) {
              dominated = true;
              break;
            }
          }
          if (!dominated) return false;
        }
        return true;
      });
}

SymmetricTask coloring_task(std::shared_ptr<const Topology> topology) {
  auto topo = require(std::move(topology), "coloring_task");
  const int n = topo->num_parties();
  std::vector<int> palette(static_cast<std::size_t>(topo->max_degree()) + 1);
  std::iota(palette.begin(), palette.end(), 0);
  return SymmetricTask(
             "coloring@" + topo->name(), n, std::move(palette),
             [](const std::vector<int>&) { return true; })
      .with_refinement([topo](std::span<const int> values,
                              std::span<const int> crash_round) {
        for (int v = 0; v < topo->num_parties(); ++v) {
          if (!alive_at(crash_round, v)) continue;
          for (const int u : topo->neighbors(v)) {
            if (u > v && alive_at(crash_round, u) &&
                values[static_cast<std::size_t>(u)] ==
                    values[static_cast<std::size_t>(v)]) {
              return false;
            }
          }
        }
        return true;
      });
}

SymmetricTask ruling_set_2_task(std::shared_ptr<const Topology> topology) {
  auto topo = require(std::move(topology), "ruling_set_2_task");
  const int n = topo->num_parties();
  return SymmetricTask(
             "2-ruling-set@" + topo->name(), n, {0, 1},
             [](const std::vector<int>&) { return true; })
      .with_refinement([topo](std::span<const int> values,
                              std::span<const int> crash_round) {
        if (!independent(*topo, values, crash_round)) return false;
        // Domination at distance <= 2, routed through alive parties only:
        // crashed intermediates carry no path on the surviving subgraph.
        for (int v = 0; v < topo->num_parties(); ++v) {
          if (values[static_cast<std::size_t>(v)] != 0 ||
              !alive_at(crash_round, v)) {
            continue;
          }
          bool dominated = false;
          for (const int u : topo->neighbors(v)) {
            if (!alive_at(crash_round, u)) continue;
            if (values[static_cast<std::size_t>(u)] == 1) {
              dominated = true;
              break;
            }
            for (const int w : topo->neighbors(u)) {
              if (w != v && values[static_cast<std::size_t>(w)] == 1 &&
                  alive_at(crash_round, w)) {
                dominated = true;
                break;
              }
            }
            if (dominated) break;
          }
          if (!dominated) return false;
        }
        return true;
      });
}

GraphTaskRegistry& GraphTaskRegistry::global() {
  static GraphTaskRegistry* registry = [] {
    auto* r = new GraphTaskRegistry();
    r->add("mis", 0,
           "maximal independent set over the instance adjacency "
           "(independence + maximality over survivors)",
           [](std::shared_ptr<const Topology> topo, const std::vector<int>&) {
             return mis_task(std::move(topo));
           });
    r->add("coloring", 0,
           "proper (Δ+1)-coloring: alive–alive edge endpoints differ",
           [](std::shared_ptr<const Topology> topo, const std::vector<int>&) {
             return coloring_task(std::move(topo));
           });
    r->add("2-ruling-set", 0,
           "(2,2)-ruling set: independent 1s dominating every alive 0 "
           "within distance 2",
           [](std::shared_ptr<const Topology> topo, const std::vector<int>&) {
             return ruling_set_2_task(std::move(topo));
           });
    return r;
  }();
  return *registry;
}

void GraphTaskRegistry::add(const std::string& name, int arity,
                            std::string help, Factory factory) {
  if (name.empty() || name.find('(') != std::string::npos) {
    throw InvalidArgument("GraphTaskRegistry::add: bad name '" + name + "'");
  }
  entries_[name] = Entry{arity, std::move(help), std::move(factory)};
}

bool GraphTaskRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

SymmetricTask GraphTaskRegistry::make(
    const std::string& spec, std::shared_ptr<const Topology> topology) const {
  // Reuse the registry spec grammar: bare name or name(args).
  const std::size_t open = spec.find('(');
  const std::string base = open == std::string::npos ? spec
                                                     : spec.substr(0, open);
  const auto it = entries_.find(base);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& name : names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw UnknownName("graph-task registry: unknown name '" + base +
                      "' (known: " + known + ")");
  }
  if (it->second.arity != 0) {
    throw InvalidArgument("graph-task '" + base +
                          "': argument parsing not supported yet");
  }
  if (open != std::string::npos) {
    throw InvalidArgument("graph-task '" + base + "' takes no arguments");
  }
  return it->second.factory(std::move(topology), {});
}

std::vector<std::string> GraphTaskRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::vector<std::string> GraphTaskRegistry::describe() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    std::string line = name;
    if (entry.arity > 0) {
      line += "(";
      for (int i = 0; i < entry.arity; ++i) line += i == 0 ? "_" : ",_";
      line += ")";
    }
    if (!entry.help.empty()) line += " — " + entry.help;
    out.push_back(std::move(line));
  }
  return out;
}

SymmetricTask make_graph_task(const std::string& spec,
                              std::shared_ptr<const Topology> topology) {
  return GraphTaskRegistry::global().make(spec, std::move(topology));
}

}  // namespace rsb::graph
