#include "graph/agents.hpp"

#include <cstdio>
#include <memory>
#include <utility>

#include "algo/agents.hpp"
#include "util/error.hpp"

namespace rsb::graph {

namespace {

/// Fixed-width hex so lexicographic payload order is numeric word order
/// (the gossip-LE convention).
std::string hex_word(std::uint64_t word) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(word));
  return std::string(buffer);
}

}  // namespace

// ---------------------------------------------------------------- Luby MIS
//
// 2-round phases on rounds (2k−1, 2k):
//  round A (propose): every active party broadcasts "p" + hex(word);
//    a receiver is a pending joiner iff its own priority strictly exceeds
//    every proposal it heard (equal words — shared sources — beat nobody,
//    so neither of a tied pair joins and the phase retries).
//  round B (join): pending joiners broadcast "m" and decide 1; an active
//    receiver of any "m" is dominated and decides 0.
// Decided parties transmit nothing, so a proposal round only competes
// against still-active neighbors; an isolated or fully-settled
// neighborhood makes the party a trivial local maximum, which is exactly
// maximality.

void LubyMISAgent::begin(const Init& init) { init_ = init; }

void LubyMISAgent::send_phase(int round, std::uint64_t random_word,
                              sim::Outbox& out) {
  if (decided()) return;
  if (round % 2 == 1) {  // propose
    own_priority_ = "p" + hex_word(random_word);
    pending_join_ = false;
    if (init_.num_ports > 0) out.send_all(own_priority_);
  } else {  // join
    if (!pending_join_) return;
    if (init_.num_ports > 0) out.send_all("m");
    decide(1);
  }
}

void LubyMISAgent::receive_phase(int round, const sim::Delivery& delivery) {
  if (decided()) return;
  if (round % 2 == 1) {
    bool local_max = true;
    for (const auto& message : delivery.by_port) {
      const std::string_view text = delivery.text(message);
      if (!text.empty() && text.front() == 'p' && text >= own_priority_) {
        local_max = false;
        break;
      }
    }
    pending_join_ = local_max;
  } else {
    for (const auto& message : delivery.by_port) {
      if (delivery.text(message) == "m") {
        decide(0);
        return;
      }
    }
  }
}

// ---------------------------------------------------------- trial coloring
//
// 2-round phases:
//  round A (trial): an active party draws a color uniformly (word mod
//    palette) from the colors its neighbors have not finalized and
//    broadcasts "t" + color; a receiver is conflicted iff some neighbor
//    trialed the same color this phase.
//  round B (finalize): unconflicted parties broadcast "f" + color and
//    decide it; receivers strike finalized colors from their palettes.
// The palette has Δ+1 colors and at most degree ≤ Δ can ever be taken,
// so the allowed set is never empty.

void TrialColoringAgent::begin(const Init& init) {
  init_ = init;
  taken_.assign(static_cast<std::size_t>(init.max_degree) + 1, false);
}

void TrialColoringAgent::send_phase(int round, std::uint64_t random_word,
                                    sim::Outbox& out) {
  if (decided()) return;
  if (round % 2 == 1) {  // trial
    std::vector<int> allowed;
    for (std::size_t c = 0; c < taken_.size(); ++c) {
      if (!taken_[c]) allowed.push_back(static_cast<int>(c));
    }
    trial_color_ = allowed[static_cast<std::size_t>(
        random_word % static_cast<std::uint64_t>(allowed.size()))];
    conflicted_ = false;
    if (init_.num_ports > 0) {
      out.send_all("t" + std::to_string(trial_color_));
    }
  } else {  // finalize
    if (conflicted_) return;
    if (init_.num_ports > 0) {
      out.send_all("f" + std::to_string(trial_color_));
    }
    decide(trial_color_);
  }
}

void TrialColoringAgent::receive_phase(int round,
                                       const sim::Delivery& delivery) {
  if (decided()) return;
  if (round % 2 == 1) {
    const std::string own = "t" + std::to_string(trial_color_);
    for (const auto& message : delivery.by_port) {
      if (delivery.text(message) == own) {
        conflicted_ = true;
        break;
      }
    }
  } else {
    for (const auto& message : delivery.by_port) {
      const std::string_view text = delivery.text(message);
      if (text.empty() || text.front() != 'f') continue;
      const int color = std::stoi(std::string(text.substr(1)));
      if (color >= 0 && color < static_cast<int>(taken_.size())) {
        taken_[static_cast<std::size_t>(color)] = true;
      }
    }
  }
}

// ---------------------------------------------------------- 2-ruling set
//
// 4-round phases:
//  R1 (propose): active parties broadcast their hex priority; everyone
//    records the maximum over its closed neighborhood.
//  R2 (forward): broadcast "q" + that 1-hop maximum, extending every
//    party's horizon to distance 2. A party is beaten iff some received
//    priority — direct or forwarded — strictly exceeds its own (its own
//    value echoed back is not a competitor).
//  R3 (join): unbeaten parties are 2-hop-local maxima: broadcast "m",
//    decide 1. Receivers of "m" mark themselves ruler-adjacent.
//  R4 (retreat): ruler-adjacent actives broadcast "n" and decide 0
//    (distance 1); active receivers of "n" decide 0 (distance 2).
// Rulers joined in different phases are never adjacent: a ruler's whole
// neighborhood decides 0 in its phase's R4, so it never competes again.

void RulingSet2Agent::begin(const Init& init) { init_ = init; }

void RulingSet2Agent::send_phase(int round, std::uint64_t random_word,
                                 sim::Outbox& out) {
  if (decided()) return;
  switch ((round - 1) % 4) {
    case 0:  // propose
      own_priority_ = hex_word(random_word);
      best_seen_ = own_priority_;
      beaten_ = false;
      adjacent_to_ruler_ = false;
      if (init_.num_ports > 0) out.send_all("p" + own_priority_);
      break;
    case 1:  // forward the 1-hop max
      if (init_.num_ports > 0) out.send_all("q" + best_seen_);
      break;
    case 2:  // join
      if (beaten_) break;
      if (init_.num_ports > 0) out.send_all("m");
      decide(1);
      break;
    case 3:  // retreat
      if (!adjacent_to_ruler_) break;
      if (init_.num_ports > 0) out.send_all("n");
      decide(0);
      break;
  }
}

void RulingSet2Agent::receive_phase(int round,
                                    const sim::Delivery& delivery) {
  if (decided()) return;
  switch ((round - 1) % 4) {
    case 0:
      for (const auto& message : delivery.by_port) {
        const std::string_view text = delivery.text(message);
        if (text.empty() || text.front() != 'p') continue;
        const std::string_view priority = text.substr(1);
        if (priority > best_seen_) best_seen_ = std::string(priority);
        if (priority > own_priority_) beaten_ = true;
      }
      break;
    case 1:
      for (const auto& message : delivery.by_port) {
        const std::string_view text = delivery.text(message);
        if (text.empty() || text.front() != 'q') continue;
        if (text.substr(1) > own_priority_) beaten_ = true;
      }
      break;
    case 2:
      for (const auto& message : delivery.by_port) {
        if (delivery.text(message) == "m") {
          adjacent_to_ruler_ = true;
          break;
        }
      }
      break;
    case 3:
      for (const auto& message : delivery.by_port) {
        if (delivery.text(message) == "n") {
          decide(0);
          return;
        }
      }
      break;
  }
}

// ---------------------------------------------------------------- registry

AgentRegistry& AgentRegistry::global() {
  static AgentRegistry* registry = [] {
    auto* r = new AgentRegistry();
    r->add("luby-mis", 0,
           "Luby-style maximal independent set (2-round propose/join "
           "phases; pair with task mis)",
           [](const std::vector<int>&) -> sim::Network::AgentFactory {
             return [](int) { return std::make_unique<LubyMISAgent>(); };
           });
    r->add("trial-coloring", 0,
           "randomized (Δ+1)-coloring by trial colors (pair with task "
           "coloring)",
           [](const std::vector<int>&) -> sim::Network::AgentFactory {
             return [](int) { return std::make_unique<TrialColoringAgent>(); };
           });
    r->add("ruling-set-2", 0,
           "(2,2)-ruling set via 2-hop priority forwarding (pair with "
           "task 2-ruling-set)",
           [](const std::vector<int>&) -> sim::Network::AgentFactory {
             return [](int) { return std::make_unique<RulingSet2Agent>(); };
           });
    r->add("gossip-le", 0,
           "one-shot gossip leader election (the clique baseline; "
           "delay-tolerant, crash-intolerant)",
           [](const std::vector<int>&) -> sim::Network::AgentFactory {
             return [](int) {
               return std::make_unique<sim::GossipLeaderElectionAgent>();
             };
           });
    return r;
  }();
  return *registry;
}

void AgentRegistry::add(const std::string& name, int arity, std::string help,
                        Factory factory) {
  if (name.empty() || name.find('(') != std::string::npos) {
    throw InvalidArgument("AgentRegistry::add: bad name '" + name + "'");
  }
  entries_[name] = Entry{arity, std::move(help), std::move(factory)};
}

bool AgentRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

sim::Network::AgentFactory AgentRegistry::make(const std::string& spec) const {
  const std::size_t open = spec.find('(');
  const std::string base = open == std::string::npos ? spec
                                                     : spec.substr(0, open);
  const auto it = entries_.find(base);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& name : names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    throw UnknownName("agent registry: unknown name '" + base +
                      "' (known: " + known + ")");
  }
  if (open != std::string::npos || it->second.arity != 0) {
    throw InvalidArgument("agent '" + base + "' takes no arguments");
  }
  return it->second.factory({});
}

std::vector<std::string> AgentRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::vector<std::string> AgentRegistry::describe() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    std::string line = name;
    if (entry.arity > 0) {
      line += "(";
      for (int i = 0; i < entry.arity; ++i) line += i == 0 ? "_" : ",_";
      line += ")";
    }
    if (!entry.help.empty()) line += " — " + entry.help;
    out.push_back(std::move(line));
  }
  return out;
}

sim::Network::AgentFactory make_agents(const std::string& spec) {
  return AgentRegistry::global().make(spec);
}

}  // namespace rsb::graph
