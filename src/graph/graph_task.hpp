// Graph tasks: symmetry-breaking problems judged against an instance
// adjacency.
//
// The census-predicate tasks in tasks/tasks.hpp capture everything a
// *symmetric* output complex can say — but MIS, (Δ+1)-coloring and ruling
// sets (Barenboim–Elkin–Pettie–Schneider's canonical locality family) are
// valid or not depending on WHERE the values sit relative to the edges of
// a concrete graph. These factories build SymmetricTask instances whose
// census predicate is the trivially-true (or alphabet-range) part and
// whose Refinement closure holds a shared_ptr to the Topology and checks
// the positional conditions: no edge inside the chosen set, endpoints
// colored differently, every out-vertex dominated within distance 2.
//
// Crash semantics follow the t-resilient tasks: a crashed party's value is
// ignored, edges incident to it impose no constraint, and domination may
// only route through surviving parties — the honest judgement of what the
// survivors achieved on the induced surviving subgraph.
//
// GraphTaskRegistry mirrors TaskRegistry but factories take the topology:
// a graph task cannot exist without an instance. Experiment::with_task
// falls back to this registry for names TaskRegistry does not know, and
// refuses with a named reason when no topology is set.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "tasks/tasks.hpp"

namespace rsb::graph {

/// Maximal independent set over `topology`: alphabet {0, 1}; the alive 1s
/// form an independent set (no alive–alive edge with both endpoints 1)
/// that is maximal over survivors (every alive 0 has an alive 1-neighbor).
SymmetricTask mis_task(std::shared_ptr<const Topology> topology);

/// Proper (Δ+1)-coloring: alphabet {0, ..., max_degree}; the endpoints of
/// every alive–alive edge receive distinct colors.
SymmetricTask coloring_task(std::shared_ptr<const Topology> topology);

/// (2,2)-ruling set: alphabet {0, 1}; the alive 1s are independent and
/// every alive 0 reaches an alive 1 within distance <= 2 through alive
/// intermediate parties.
SymmetricTask ruling_set_2_task(std::shared_ptr<const Topology> topology);

/// Name-keyed graph-task factories. Entries: mis, coloring, 2-ruling-set.
class GraphTaskRegistry {
 public:
  using Factory = std::function<SymmetricTask(
      std::shared_ptr<const Topology> topology, const std::vector<int>& args)>;

  struct Entry {
    int arity = 0;
    std::string help;
    Factory factory;
  };

  static GraphTaskRegistry& global();

  void add(const std::string& name, int arity, std::string help,
           Factory factory);
  /// `name` is the bare task name (no parenthesized arguments).
  bool contains(const std::string& name) const;

  SymmetricTask make(const std::string& spec,
                     std::shared_ptr<const Topology> topology) const;

  std::vector<std::string> names() const;
  std::vector<std::string> describe() const;

 private:
  std::map<std::string, Entry> entries_;
};

/// Shorthand over the global registry.
SymmetricTask make_graph_task(const std::string& spec,
                              std::shared_ptr<const Topology> topology);

}  // namespace rsb::graph
