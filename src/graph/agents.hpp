// Locality-aware agents for sparse topologies.
//
// Each agent here talks only on its own ports (Init::num_ports — its graph
// degree under a Topology) and never assumes the all-to-all wiring, so a
// round costs O(degree) messages and a full network round O(edges). They
// realize the classic randomized symmetry-breaking routines the locality
// literature measures (Barenboim–Elkin–Pettie–Schneider):
//
//  * LubyMISAgent — Luby-style maximal independent set in 2-round phases:
//    propose (broadcast this phase's random priority), then join (strict
//    local maxima enter the set and announce; their neighbors leave).
//  * TrialColoringAgent — randomized (Δ+1)-coloring in 2-round phases:
//    trial (broadcast a random color from the still-allowed palette),
//    then finalize (keep the color iff no neighbor trialed it; announce
//    so neighbors strike it from their palettes).
//  * RulingSet2Agent — (2,2)-ruling set in 4-round phases: priorities are
//    forwarded one extra hop so only 2-hop-local maxima join, and the
//    joiners' neighbors forward the retreat one hop so everything within
//    distance 2 of a ruler retires.
//
// All three decide irrevocably and transmit nothing afterwards, so a
// silent port reads as "that neighbor settled". Ties (adjacent parties on
// one shared randomness source draw identical words) stall the affected
// phase honestly — the run simply fails to terminate within the round
// budget instead of breaking validity, which the correlated-randomness
// experiments rely on.
//
// AgentRegistry mirrors the protocol/task registries for the agent
// backend: canonical specs name agents ("agents=luby-mis") and resolve
// here to a Network::AgentFactory.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace rsb::graph {

/// Luby-style MIS. Outputs: 1 = in the set, 0 = dominated. Valid against
/// mis_task on the same topology.
class LubyMISAgent final : public sim::Agent {
 public:
  void begin(const Init& init) override;
  void send_phase(int round, std::uint64_t random_word,
                  sim::Outbox& out) override;
  void receive_phase(int round, const sim::Delivery& delivery) override;

 private:
  Init init_;
  std::string own_priority_;  // this phase's "p"-prefixed hex word
  bool pending_join_ = false;
};

/// Randomized (Δ+1)-coloring by trial colors. Outputs: the final color in
/// {0, ..., Δ}. Valid against coloring_task on the same topology.
class TrialColoringAgent final : public sim::Agent {
 public:
  void begin(const Init& init) override;
  void send_phase(int round, std::uint64_t random_word,
                  sim::Outbox& out) override;
  void receive_phase(int round, const sim::Delivery& delivery) override;

 private:
  Init init_;
  std::vector<bool> taken_;  // colors finalized by neighbors
  int trial_color_ = -1;
  bool conflicted_ = false;
};

/// (2,2)-ruling set via 2-hop priority forwarding. Outputs: 1 = ruler,
/// 0 = within distance 2 of one. Valid against ruling_set_2_task.
class RulingSet2Agent final : public sim::Agent {
 public:
  void begin(const Init& init) override;
  void send_phase(int round, std::uint64_t random_word,
                  sim::Outbox& out) override;
  void receive_phase(int round, const sim::Delivery& delivery) override;

 private:
  Init init_;
  std::string own_priority_;   // this phase's bare hex word
  std::string best_seen_;      // max over the closed neighborhood
  bool beaten_ = false;        // some 1- or 2-hop priority exceeds ours
  bool adjacent_to_ruler_ = false;
};

/// Name-keyed agent factories for the agent backend. Entries:
///   luby-mis, trial-coloring, ruling-set-2 (this file) and gossip-le
///   (the clique-era GossipLeaderElectionAgent, so the agent backend's
///   canonical specs can also name the existing baseline).
class AgentRegistry {
 public:
  using Factory =
      std::function<sim::Network::AgentFactory(const std::vector<int>& args)>;

  struct Entry {
    int arity = 0;
    std::string help;
    Factory factory;
  };

  static AgentRegistry& global();

  void add(const std::string& name, int arity, std::string help,
           Factory factory);
  /// `name` is the bare agent name (no parenthesized arguments).
  bool contains(const std::string& name) const;

  sim::Network::AgentFactory make(const std::string& spec) const;

  std::vector<std::string> names() const;
  std::vector<std::string> describe() const;

 private:
  std::map<std::string, Entry> entries_;
};

/// Shorthand over the global registry.
sim::Network::AgentFactory make_agents(const std::string& spec);

}  // namespace rsb::graph
