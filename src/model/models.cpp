#include "model/models.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/partitions.hpp"

namespace rsb {

std::string to_string(Model model) {
  switch (model) {
    case Model::kBlackboard:
      return "blackboard";
    case Model::kMessagePassing:
      return "message-passing";
  }
  return "?";
}

std::string to_string(MessageVariant variant) {
  switch (variant) {
    case MessageVariant::kPortTagged:
      return "port-tagged";
    case MessageVariant::kLiteral:
      return "literal";
  }
  return "?";
}

std::vector<KnowledgeId> initial_knowledge(KnowledgeStore& store,
                                           int num_parties) {
  if (num_parties < 1) {
    throw InvalidArgument("initial_knowledge: n must be >= 1");
  }
  return std::vector<KnowledgeId>(static_cast<std::size_t>(num_parties),
                                  store.bottom());
}

std::vector<KnowledgeId> initial_knowledge_with_inputs(
    KnowledgeStore& store, const std::vector<std::int64_t>& inputs) {
  std::vector<KnowledgeId> out;
  out.reserve(inputs.size());
  for (std::int64_t v : inputs) out.push_back(store.input(v));
  return out;
}

std::vector<KnowledgeId> blackboard_round(KnowledgeStore& store,
                                          const std::vector<KnowledgeId>& prev,
                                          const std::vector<bool>& bits) {
  const std::size_t n = prev.size();
  if (bits.size() != n) {
    throw InvalidArgument("blackboard_round: bits/knowledge size mismatch");
  }
  std::vector<KnowledgeId> next;
  next.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<KnowledgeId> others;
    others.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(prev[j]);
    }
    next.push_back(store.blackboard_step(prev[i], bits[i], std::move(others)));
  }
  return next;
}

std::vector<KnowledgeId> blackboard_round_crash(
    KnowledgeStore& store, const std::vector<KnowledgeId>& prev,
    const std::vector<bool>& bits, const std::vector<int>& crash_round,
    int round) {
  if (crash_round.empty()) return blackboard_round(store, prev, bits);
  const std::size_t n = prev.size();
  if (bits.size() != n || crash_round.size() != n) {
    throw InvalidArgument(
        "blackboard_round_crash: bits/crash/knowledge size mismatch");
  }
  const auto alive = [&](std::size_t j) {
    return crash_round[j] < 0 || round < crash_round[j];
  };
  std::vector<KnowledgeId> next;
  next.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive(i)) {
      next.push_back(prev[i]);  // frozen at the last pre-crash value
      continue;
    }
    std::vector<KnowledgeId> others;
    others.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && alive(j)) others.push_back(prev[j]);
    }
    next.push_back(store.blackboard_step(prev[i], bits[i], std::move(others)));
  }
  return next;
}

void blackboard_round_inplace(KnowledgeStore& store,
                              std::vector<KnowledgeId>& knowledge,
                              const std::vector<bool>& bits,
                              RoundScratch& scratch) {
  const std::size_t n = knowledge.size();
  if (bits.size() != n) {
    throw InvalidArgument(
        "blackboard_round_inplace: bits/knowledge size mismatch");
  }
  // One shared sort canonicalizes every party's multiset: the multiset
  // {prev[j] : j != i} is the sorted previous vector minus one occurrence
  // of prev[i], spliced out with two copies.
  scratch.sorted_prev = knowledge;
  std::sort(scratch.sorted_prev.begin(), scratch.sorted_prev.end());
  scratch.next.clear();
  scratch.next.reserve(n);
  scratch.received.resize(n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const KnowledgeId own = knowledge[i];
    const auto it = std::lower_bound(scratch.sorted_prev.begin(),
                                     scratch.sorted_prev.end(), own);
    const std::size_t skip =
        static_cast<std::size_t>(it - scratch.sorted_prev.begin());
    std::copy(scratch.sorted_prev.begin(), it, scratch.received.begin());
    std::copy(it + 1, scratch.sorted_prev.end(),
              scratch.received.begin() + static_cast<std::ptrdiff_t>(skip));
    scratch.next.push_back(
        store.blackboard_step_sorted(own, bits[i], scratch.received));
  }
  knowledge.swap(scratch.next);
}

void blackboard_round_inplace_dedup(KnowledgeStore& store,
                                    std::vector<KnowledgeId>& knowledge,
                                    const std::vector<bool>& bits,
                                    std::span<const KnowledgeId> sorted_prev,
                                    RoundScratch& scratch) {
  const std::size_t n = knowledge.size();
  if (bits.size() != n || sorted_prev.size() != n) {
    throw InvalidArgument(
        "blackboard_round_inplace_dedup: bits/sorted_prev/knowledge size "
        "mismatch");
  }
  scratch.next.clear();
  scratch.next.reserve(n);
  scratch.received.resize(n > 0 ? n - 1 : 0);
  scratch.memo_prev.clear();
  scratch.memo_bit.clear();
  scratch.memo_id.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const KnowledgeId own = knowledge[i];
    const unsigned char bit = bits[i] ? 1 : 0;
    std::size_t m = 0;
    for (; m < scratch.memo_prev.size(); ++m) {
      if (scratch.memo_prev[m] == own && scratch.memo_bit[m] == bit) break;
    }
    if (m < scratch.memo_prev.size()) {
      scratch.next.push_back(scratch.memo_id[m]);
      continue;
    }
    const auto it =
        std::lower_bound(sorted_prev.begin(), sorted_prev.end(), own);
    const std::size_t skip =
        static_cast<std::size_t>(it - sorted_prev.begin());
    std::copy(sorted_prev.begin(), it, scratch.received.begin());
    std::copy(it + 1, sorted_prev.end(),
              scratch.received.begin() + static_cast<std::ptrdiff_t>(skip));
    const KnowledgeId id =
        store.blackboard_step_sorted(own, bits[i], scratch.received);
    scratch.memo_prev.push_back(own);
    scratch.memo_bit.push_back(bit);
    scratch.memo_id.push_back(id);
    scratch.next.push_back(id);
  }
  knowledge.swap(scratch.next);
}

void blackboard_round_crash_inplace(KnowledgeStore& store,
                                    std::vector<KnowledgeId>& knowledge,
                                    const std::vector<bool>& bits,
                                    const std::vector<int>& crash_round,
                                    int round, RoundScratch& scratch) {
  if (crash_round.empty()) {
    blackboard_round_inplace(store, knowledge, bits, scratch);
    return;
  }
  const std::size_t n = knowledge.size();
  if (bits.size() != n || crash_round.size() != n) {
    throw InvalidArgument(
        "blackboard_round_crash_inplace: bits/crash/knowledge size mismatch");
  }
  const auto alive = [&](std::size_t j) {
    return crash_round[j] < 0 || round < crash_round[j];
  };
  // Eq. (1)'s survivor-restricted multiset: one shared sort of the alive
  // previous values; each alive party's multiset is that vector minus one
  // occurrence of its own value.
  scratch.sorted_prev.clear();
  for (std::size_t j = 0; j < n; ++j) {
    if (alive(j)) scratch.sorted_prev.push_back(knowledge[j]);
  }
  std::sort(scratch.sorted_prev.begin(), scratch.sorted_prev.end());
  scratch.next.clear();
  scratch.next.reserve(n);
  scratch.received.resize(
      scratch.sorted_prev.empty() ? 0 : scratch.sorted_prev.size() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive(i)) {
      scratch.next.push_back(knowledge[i]);  // frozen at last pre-crash value
      continue;
    }
    const KnowledgeId own = knowledge[i];
    const auto it = std::lower_bound(scratch.sorted_prev.begin(),
                                     scratch.sorted_prev.end(), own);
    const std::size_t skip =
        static_cast<std::size_t>(it - scratch.sorted_prev.begin());
    std::copy(scratch.sorted_prev.begin(), it, scratch.received.begin());
    std::copy(it + 1, scratch.sorted_prev.end(),
              scratch.received.begin() + static_cast<std::ptrdiff_t>(skip));
    scratch.next.push_back(
        store.blackboard_step_sorted(own, bits[i], scratch.received));
  }
  knowledge.swap(scratch.next);
}

void message_round_inplace(KnowledgeStore& store,
                           std::vector<KnowledgeId>& knowledge,
                           const std::vector<bool>& bits,
                           const PortAssignment& ports, MessageVariant variant,
                           RoundScratch& scratch) {
  const std::size_t n = knowledge.size();
  if (bits.size() != n) {
    throw InvalidArgument(
        "message_round_inplace: bits/knowledge size mismatch");
  }
  if (ports.num_parties() != static_cast<int>(n)) {
    throw InvalidArgument(
        "message_round_inplace: ports/knowledge size mismatch");
  }
  const bool tagged = variant == MessageVariant::kPortTagged;
  scratch.next.clear();
  scratch.next.reserve(n);
  scratch.received.resize(n > 0 ? n - 1 : 0);
  scratch.tags.resize(tagged && n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int p = 1; p <= static_cast<int>(n) - 1; ++p) {
      const int sender = ports.neighbor(static_cast<int>(i), p);
      scratch.received[static_cast<std::size_t>(p - 1)] =
          knowledge[static_cast<std::size_t>(sender)];
      if (tagged) {
        scratch.tags[static_cast<std::size_t>(p - 1)] =
            ports.port_to(sender, static_cast<int>(i));
      }
    }
    scratch.next.push_back(store.message_step_view(
        knowledge[i], bits[i], scratch.received, scratch.tags));
  }
  knowledge.swap(scratch.next);
}

std::vector<KnowledgeId> message_round(KnowledgeStore& store,
                                       const std::vector<KnowledgeId>& prev,
                                       const std::vector<bool>& bits,
                                       const PortAssignment& ports,
                                       MessageVariant variant) {
  const std::size_t n = prev.size();
  if (bits.size() != n) {
    throw InvalidArgument("message_round: bits/knowledge size mismatch");
  }
  if (ports.num_parties() != static_cast<int>(n)) {
    throw InvalidArgument("message_round: ports/knowledge size mismatch");
  }
  std::vector<KnowledgeId> next;
  next.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<KnowledgeId> by_port;
    std::vector<int> tags;
    by_port.reserve(n - 1);
    tags.reserve(n - 1);
    for (int p = 1; p <= static_cast<int>(n) - 1; ++p) {
      const int sender = ports.neighbor(static_cast<int>(i), p);
      by_port.push_back(prev[static_cast<std::size_t>(sender)]);
      if (variant == MessageVariant::kPortTagged) {
        tags.push_back(ports.port_to(sender, static_cast<int>(i)));
      }
    }
    if (variant == MessageVariant::kPortTagged) {
      next.push_back(store.message_step_tagged(prev[i], bits[i],
                                               std::move(by_port),
                                               std::move(tags)));
    } else {
      next.push_back(store.message_step(prev[i], bits[i], std::move(by_port)));
    }
  }
  return next;
}

std::vector<KnowledgeId> message_round_crash(
    KnowledgeStore& store, const std::vector<KnowledgeId>& prev,
    const std::vector<bool>& bits, const PortAssignment& ports,
    MessageVariant variant, const std::vector<int>& crash_round, int round) {
  if (crash_round.empty()) {
    return message_round(store, prev, bits, ports, variant);
  }
  const std::size_t n = prev.size();
  if (bits.size() != n || crash_round.size() != n) {
    throw InvalidArgument(
        "message_round_crash: bits/crash/knowledge size mismatch");
  }
  if (ports.num_parties() != static_cast<int>(n)) {
    throw InvalidArgument("message_round_crash: ports/knowledge size mismatch");
  }
  const auto alive = [&](std::size_t j) {
    return crash_round[j] < 0 || round < crash_round[j];
  };
  std::vector<KnowledgeId> next;
  next.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive(i)) {
      next.push_back(prev[i]);  // frozen at the last pre-crash value
      continue;
    }
    std::vector<KnowledgeId> by_port;
    std::vector<int> tags;
    by_port.reserve(n - 1);
    if (variant == MessageVariant::kPortTagged) tags.reserve(n - 1);
    for (int p = 1; p <= static_cast<int>(n) - 1; ++p) {
      const int sender = ports.neighbor(static_cast<int>(i), p);
      const bool sender_alive = alive(static_cast<std::size_t>(sender));
      by_port.push_back(sender_alive ? prev[static_cast<std::size_t>(sender)]
                                     : store.silence());
      if (variant == MessageVariant::kPortTagged) {
        // A silent channel transmits nothing, so no reciprocal tag; 0 is
        // outside the valid port range [1, n-1].
        tags.push_back(sender_alive ? ports.port_to(sender, static_cast<int>(i))
                                    : 0);
      }
    }
    if (variant == MessageVariant::kPortTagged) {
      next.push_back(store.message_step_tagged(prev[i], bits[i],
                                               std::move(by_port),
                                               std::move(tags)));
    } else {
      next.push_back(store.message_step(prev[i], bits[i], std::move(by_port)));
    }
  }
  return next;
}

void message_round_crash_inplace(KnowledgeStore& store,
                                 std::vector<KnowledgeId>& knowledge,
                                 const std::vector<bool>& bits,
                                 const PortAssignment& ports,
                                 MessageVariant variant,
                                 const std::vector<int>& crash_round,
                                 int round, RoundScratch& scratch) {
  if (crash_round.empty()) {
    message_round_inplace(store, knowledge, bits, ports, variant, scratch);
    return;
  }
  const std::size_t n = knowledge.size();
  if (bits.size() != n || crash_round.size() != n) {
    throw InvalidArgument(
        "message_round_crash_inplace: bits/crash/knowledge size mismatch");
  }
  if (ports.num_parties() != static_cast<int>(n)) {
    throw InvalidArgument(
        "message_round_crash_inplace: ports/knowledge size mismatch");
  }
  const auto alive = [&](std::size_t j) {
    return crash_round[j] < 0 || round < crash_round[j];
  };
  const bool tagged = variant == MessageVariant::kPortTagged;
  scratch.next.clear();
  scratch.next.reserve(n);
  scratch.received.resize(n > 0 ? n - 1 : 0);
  scratch.tags.resize(tagged && n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive(i)) {
      scratch.next.push_back(knowledge[i]);  // frozen at last pre-crash value
      continue;
    }
    for (int p = 1; p <= static_cast<int>(n) - 1; ++p) {
      const int sender = ports.neighbor(static_cast<int>(i), p);
      const bool sender_alive = alive(static_cast<std::size_t>(sender));
      // silence() interns lazily on first use — the same point in the id
      // sequence as the allocating version, keeping ids byte-identical.
      scratch.received[static_cast<std::size_t>(p - 1)] =
          sender_alive ? knowledge[static_cast<std::size_t>(sender)]
                       : store.silence();
      if (tagged) {
        // A silent channel transmits nothing, so no reciprocal tag; 0 is
        // outside the valid port range [1, n-1].
        scratch.tags[static_cast<std::size_t>(p - 1)] =
            sender_alive ? ports.port_to(sender, static_cast<int>(i)) : 0;
      }
    }
    scratch.next.push_back(store.message_step_view(
        knowledge[i], bits[i], scratch.received, scratch.tags));
  }
  knowledge.swap(scratch.next);
}

namespace {

std::vector<bool> round_bits(const Realization& realization, int round) {
  std::vector<bool> bits;
  bits.reserve(static_cast<std::size_t>(realization.num_parties()));
  for (int party = 0; party < realization.num_parties(); ++party) {
    bits.push_back(realization.string_of(party).bit_at_round(round));
  }
  return bits;
}

}  // namespace

std::vector<KnowledgeId> knowledge_at_blackboard(
    KnowledgeStore& store, const Realization& realization) {
  std::vector<KnowledgeId> knowledge =
      initial_knowledge(store, realization.num_parties());
  for (int round = 1; round <= realization.time(); ++round) {
    knowledge = blackboard_round(store, knowledge, round_bits(realization, round));
  }
  return knowledge;
}

std::vector<KnowledgeId> knowledge_at_message_passing(
    KnowledgeStore& store, const Realization& realization,
    const PortAssignment& ports, MessageVariant variant) {
  std::vector<KnowledgeId> knowledge =
      initial_knowledge(store, realization.num_parties());
  for (int round = 1; round <= realization.time(); ++round) {
    knowledge = message_round(store, knowledge, round_bits(realization, round),
                              ports, variant);
  }
  return knowledge;
}

std::vector<int> knowledge_partition(
    const std::vector<KnowledgeId>& knowledge) {
  std::vector<int> labels;
  labels.reserve(knowledge.size());
  for (KnowledgeId id : knowledge) labels.push_back(static_cast<int>(id));
  return canonical_blocks(labels);
}

}  // namespace rsb
