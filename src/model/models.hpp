// The two communication models, as knowledge-transition operators.
//
// A model turns the knowledge vector (K_1(t−1), ..., K_n(t−1)) plus the
// round-t random bits into (K_1(t), ..., K_n(t)), implementing Eq. (1)
// (blackboard) and Eq. (2) (message passing). Full information is implicit:
// each party contributes its entire knowledge every round.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "knowledge/knowledge.hpp"
#include "model/port_assignment.hpp"
#include "randomness/realization.hpp"

namespace rsb {

enum class Model {
  kBlackboard,
  kMessagePassing,
};

/// How much a full-information message reveals about its channel.
///
/// kPortTagged (default): a message carries the sender's outgoing port
/// number, so both endpoints learn the reciprocal port pair of their shared
/// edge. This is the reading of Eq. (2) under which the paper's theorems
/// hold: a receiver can then simulate selective-send protocols such as
/// CreateMatching, which the proof of Lemma 4.7 relies on.
///
/// kLiteral: the bare Eq. (2) tuple — received knowledge only. Under this
/// reading there are port wirings (see DESIGN.md and the model tests) where
/// the consistency partition of a gcd=1 configuration is frozen forever and
/// the 'if' direction of Theorem 4.2 fails; the variant is kept to
/// demonstrate exactly that.
enum class MessageVariant {
  kPortTagged,
  kLiteral,
};

std::string to_string(Model model);
std::string to_string(MessageVariant variant);

/// K_i(0) for input-free tasks: every party starts at ⊥.
std::vector<KnowledgeId> initial_knowledge(KnowledgeStore& store,
                                           int num_parties);

/// K_i(0) = input(v_i) for input-output tasks (Appendix C).
std::vector<KnowledgeId> initial_knowledge_with_inputs(
    KnowledgeStore& store, const std::vector<std::int64_t>& inputs);

/// One blackboard round (Eq. 1). bits[i] is X_i(t).
std::vector<KnowledgeId> blackboard_round(KnowledgeStore& store,
                                          const std::vector<KnowledgeId>& prev,
                                          const std::vector<bool>& bits);

/// Reusable scratch buffers for the in-place round operators below. Batch
/// drivers keep one per worker (RunContext) so steady-state sweeps run the
/// knowledge recursion without a single allocation per round.
struct RoundScratch {
  std::vector<KnowledgeId> sorted_prev;
  std::vector<KnowledgeId> received;
  std::vector<int> tags;
  std::vector<KnowledgeId> next;
  // Per-round (prev, bit) → id memo of the deduping blackboard operator.
  std::vector<KnowledgeId> memo_prev;
  std::vector<unsigned char> memo_bit;
  std::vector<KnowledgeId> memo_id;
};

/// One blackboard round in place: knowledge := Eq. (1)(knowledge, bits).
/// Byte-identical ids (and store insertion order) to blackboard_round —
/// the multiset each party receives is canonicalized by one shared sort of
/// the previous vector instead of n per-party sorts, and values are probed
/// with borrowed storage (KnowledgeStore::blackboard_step_sorted).
void blackboard_round_inplace(KnowledgeStore& store,
                              std::vector<KnowledgeId>& knowledge,
                              const std::vector<bool>& bits,
                              RoundScratch& scratch);

/// One message-passing round in place; byte-identical ids to
/// message_round under the same variant.
void message_round_inplace(KnowledgeStore& store,
                           std::vector<KnowledgeId>& knowledge,
                           const std::vector<bool>& bits,
                           const PortAssignment& ports, MessageVariant variant,
                           RoundScratch& scratch);

/// One blackboard round under crash-stop faults: party j participates in
/// round `round` iff crash_round[j] < 0 or round < crash_round[j]
/// (sim/fault.hpp semantics — a party halts at the start of its crash
/// round). A crashed party posts nothing, so the Eq. (1) multiset seen by
/// the survivors ranges over the still-participating parties only; the
/// crashed party's own knowledge is frozen at its last pre-crash value.
/// With an empty crash schedule this is exactly blackboard_round.
std::vector<KnowledgeId> blackboard_round_crash(
    KnowledgeStore& store, const std::vector<KnowledgeId>& prev,
    const std::vector<bool>& bits, const std::vector<int>& crash_round,
    int round);

/// blackboard_round_inplace with a per-round (prev, bit) memo: within one
/// round, a party's step value is a function of its own previous value and
/// bit alone (every party splices the same shared multiset), so parties
/// sharing a (prev, bit) pair share the result id. The first occurrence
/// performs exactly the insertion the undeduped operator would; repeats
/// would have been no-op probes, so skipping them keeps ids and store
/// insertion order byte-identical. The memo scan is O(n) per party against
/// at most n entries — a win whenever duplicates exist (early rounds,
/// where most of a sweep's rounds are spent), which is why the lockstep
/// batched path uses this variant. `sorted_prev` must be the caller-sorted
/// copy of `knowledge` (the batched engine already builds it for the
/// pre-round decision hook, so the sort is paid once per round).
void blackboard_round_inplace_dedup(KnowledgeStore& store,
                                    std::vector<KnowledgeId>& knowledge,
                                    const std::vector<bool>& bits,
                                    std::span<const KnowledgeId> sorted_prev,
                                    RoundScratch& scratch);

/// blackboard_round_crash with scratch buffers: byte-identical ids (and
/// store insertion order — survivors intern in party order, the dead
/// intern nothing) with no steady-state allocations. With an empty crash
/// schedule this is exactly blackboard_round_inplace.
void blackboard_round_crash_inplace(KnowledgeStore& store,
                                    std::vector<KnowledgeId>& knowledge,
                                    const std::vector<bool>& bits,
                                    const std::vector<int>& crash_round,
                                    int round, RoundScratch& scratch);

/// One message-passing round (Eq. 2) under the given port assignment.
std::vector<KnowledgeId> message_round(
    KnowledgeStore& store, const std::vector<KnowledgeId>& prev,
    const std::vector<bool>& bits, const PortAssignment& ports,
    MessageVariant variant = MessageVariant::kPortTagged);

/// One message-passing round under crash-stop faults: party j participates
/// in round `round` iff crash_round[j] < 0 or round < crash_round[j]
/// (sim/fault.hpp semantics). A crashed party's knowledge is frozen at its
/// last pre-crash value; an alive receiver's Eq. (2) tuple entry for a
/// port whose sender has halted is the distinguished "silence" value
/// (KnowledgeStore::silence) — the synchronous-model fact that a dead
/// channel is detectable — with reciprocal tag 0 in the port-tagged
/// variant (a silent channel transmits no tag; real ports are >= 1).
/// With an empty crash schedule this is exactly message_round.
std::vector<KnowledgeId> message_round_crash(
    KnowledgeStore& store, const std::vector<KnowledgeId>& prev,
    const std::vector<bool>& bits, const PortAssignment& ports,
    MessageVariant variant, const std::vector<int>& crash_round, int round);

/// message_round_crash with scratch buffers: byte-identical ids and store
/// insertion order (silence is interned lazily at the same first-use point
/// as the allocating version). With an empty crash schedule this is
/// exactly message_round_inplace.
void message_round_crash_inplace(KnowledgeStore& store,
                                 std::vector<KnowledgeId>& knowledge,
                                 const std::vector<bool>& bits,
                                 const PortAssignment& ports,
                                 MessageVariant variant,
                                 const std::vector<int>& crash_round,
                                 int round, RoundScratch& scratch);

/// The knowledge vector at the realization's time in the blackboard model,
/// computed by running Eq. (1) for t rounds on the realization's bits.
std::vector<KnowledgeId> knowledge_at_blackboard(
    KnowledgeStore& store, const Realization& realization);

/// Ditto for the message-passing model under the given ports.
std::vector<KnowledgeId> knowledge_at_message_passing(
    KnowledgeStore& store, const Realization& realization,
    const PortAssignment& ports,
    MessageVariant variant = MessageVariant::kPortTagged);

/// The consistency partition of the parties at the realization's time: the
/// canonical block-index form of the relation i ~_t j ⇔ K_i(t) = K_j(t)
/// (Eq. 4). For the blackboard model this equals the equal-string partition
/// of the realization (proved in Section 4.1 and checked in tests).
std::vector<int> knowledge_partition(const std::vector<KnowledgeId>& knowledge);

}  // namespace rsb
