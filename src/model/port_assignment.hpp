// Port assignments for the anonymous message-passing clique K_n.
//
// Each party privately labels its n−1 incident channels with distinct port
// numbers 1..n−1 (Section 2.1). There is no correlation between the two
// endpoints' labels of one edge; assignments are worst-case (adversarial).
//
// This module provides the assignment algebra: validation, standard
// generators, exhaustive enumeration for tiny n, automorphism checks, and
// the paper's Lemma 4.3 adversarial construction that keeps every
// consistency class a multiple of g = gcd(n_1,...,n_k).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "randomness/config.hpp"
#include "util/rng.hpp"

namespace rsb {

class PortAssignment {
 public:
  /// neighbor_of[i][p-1] = the party at the other end of party i's port p.
  /// Each row must be a permutation of [0..n-1] ∖ {i}; throws
  /// ValidationError otherwise.
  explicit PortAssignment(std::vector<std::vector<int>> neighbor_of);

  int num_parties() const noexcept {
    return static_cast<int>(neighbor_of_.size());
  }

  /// π_i(p): the party connected to party i by the edge with port number p
  /// at i (1-based p, matching the paper).
  int neighbor(int party, int port) const;

  /// The port at which `party` sees `neighbor` (1-based); throws if they are
  /// the same party.
  int port_to(int party, int neighbor) const;

  /// The canonical "cyclic" assignment: port p of party i leads to
  /// (i + p) mod n.
  static PortAssignment cyclic(int num_parties);

  /// Uniformly random rows.
  static PortAssignment random(int num_parties, Xoshiro256StarStar& rng);

  /// Advances `rng` by exactly the draws random(num_parties, rng) would
  /// consume, without materializing the assignment. Lets a parallel worker
  /// skip ahead to the wiring of run i while staying draw-for-draw
  /// identical to a serial sweep that generated runs 0..i-1 first.
  static void discard_random(int num_parties, Xoshiro256StarStar& rng);

  /// The Lemma 4.3 adversarial assignment for block size g | n. With parties
  /// written i = m·g + r (block m, residue r) and ports j = q·g + s, port j
  /// of party i leads to party ((r+s) mod g) + m·g + q·g (mod n).
  ///
  /// Note: the paper prints the formula with ceilings (⌈i/g⌉); taken
  /// literally that is not a valid assignment (see DESIGN.md). The floor
  /// (block) form implemented here is valid and admits the shift
  /// f(m·g+r) = m·g + ((r+1) mod g) as a port-preserving automorphism,
  /// which is what the proof of Lemma 4.3 uses.
  static PortAssignment adversarial(int num_parties, int block_size);

  /// Adversarial assignment aligned with a configuration whose loads are all
  /// divisible by g = gcd(loads) and whose parties are source-contiguous
  /// (e.g. built by SourceConfiguration::from_loads). Every block of g
  /// consecutive parties is then single-source, as Lemma 4.3 requires.
  static PortAssignment adversarial_for(const SourceConfiguration& config);

  /// All assignments for n parties — ((n−1)!)^n rows; practical for n ≤ 4.
  static std::vector<PortAssignment> enumerate_all(int num_parties);

  /// Visits all assignments without materializing them (still ((n−1)!)^n).
  static void for_each(int num_parties,
                       const std::function<void(const PortAssignment&)>& visit);

  /// True iff the party bijection f preserves ports: whenever i's port p
  /// leads to u, f(i)'s port p leads to f(u).
  bool is_automorphism(const std::vector<int>& f) const;

  friend bool operator==(const PortAssignment&, const PortAssignment&) = default;

  std::string to_string() const;

 private:
  std::vector<std::vector<int>> neighbor_of_;
};

}  // namespace rsb
