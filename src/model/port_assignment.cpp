#include "model/port_assignment.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace rsb {

PortAssignment::PortAssignment(std::vector<std::vector<int>> neighbor_of)
    : neighbor_of_(std::move(neighbor_of)) {
  const int n = num_parties();
  if (n < 1) {
    throw ValidationError("PortAssignment: at least one party required");
  }
  for (int i = 0; i < n; ++i) {
    const auto& row = neighbor_of_[static_cast<std::size_t>(i)];
    if (static_cast<int>(row.size()) != n - 1) {
      throw ValidationError("PortAssignment: party " + std::to_string(i) +
                            " has " + std::to_string(row.size()) +
                            " ports, expected " + std::to_string(n - 1));
    }
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (int target : row) {
      if (target < 0 || target >= n) {
        throw ValidationError("PortAssignment: party " + std::to_string(i) +
                              " port leads to invalid party " +
                              std::to_string(target));
      }
      if (target == i) {
        throw ValidationError("PortAssignment: party " + std::to_string(i) +
                              " has a port leading to itself");
      }
      if (seen[static_cast<std::size_t>(target)]) {
        throw ValidationError("PortAssignment: party " + std::to_string(i) +
                              " has two ports leading to party " +
                              std::to_string(target));
      }
      seen[static_cast<std::size_t>(target)] = true;
    }
  }
}

int PortAssignment::neighbor(int party, int port) const {
  const int n = num_parties();
  if (party < 0 || party >= n) {
    throw InvalidArgument("PortAssignment::neighbor: bad party " +
                          std::to_string(party));
  }
  if (port < 1 || port > n - 1) {
    throw InvalidArgument("PortAssignment::neighbor: port " +
                          std::to_string(port) + " outside [1," +
                          std::to_string(n - 1) + "]");
  }
  return neighbor_of_[static_cast<std::size_t>(party)]
                     [static_cast<std::size_t>(port - 1)];
}

int PortAssignment::port_to(int party, int target) const {
  const auto& row = neighbor_of_[static_cast<std::size_t>(party)];
  for (std::size_t p = 0; p < row.size(); ++p) {
    if (row[p] == target) return static_cast<int>(p) + 1;
  }
  throw InvalidArgument("PortAssignment::port_to: party " +
                        std::to_string(party) + " has no port to " +
                        std::to_string(target));
}

PortAssignment PortAssignment::cyclic(int num_parties) {
  std::vector<std::vector<int>> rows(static_cast<std::size_t>(num_parties));
  for (int i = 0; i < num_parties; ++i) {
    for (int p = 1; p <= num_parties - 1; ++p) {
      rows[static_cast<std::size_t>(i)].push_back((i + p) % num_parties);
    }
  }
  return PortAssignment(std::move(rows));
}

PortAssignment PortAssignment::random(int num_parties,
                                      Xoshiro256StarStar& rng) {
  std::vector<std::vector<int>> rows(static_cast<std::size_t>(num_parties));
  for (int i = 0; i < num_parties; ++i) {
    auto& row = rows[static_cast<std::size_t>(i)];
    for (int other = 0; other < num_parties; ++other) {
      if (other != i) row.push_back(other);
    }
    // Fisher–Yates with the library RNG.
    for (std::size_t a = row.size(); a > 1; --a) {
      const std::size_t b = rng.below(a);
      std::swap(row[a - 1], row[b]);
    }
  }
  return PortAssignment(std::move(rows));
}

void PortAssignment::discard_random(int num_parties,
                                    Xoshiro256StarStar& rng) {
  // Must mirror random()'s consumption exactly: per party, a Fisher–Yates
  // pass over a row of num_parties - 1 entries — which draws nothing for
  // n < 3 (and the unsigned row size would wrap for n = 0).
  if (num_parties < 2) return;
  for (int i = 0; i < num_parties; ++i) {
    for (std::size_t a = static_cast<std::size_t>(num_parties) - 1; a > 1;
         --a) {
      (void)rng.below(a);
    }
  }
}

PortAssignment PortAssignment::adversarial(int num_parties, int block_size) {
  if (block_size < 1 || num_parties % block_size != 0) {
    throw InvalidArgument(
        "PortAssignment::adversarial: block size must divide n (" +
        std::to_string(block_size) + " vs n=" + std::to_string(num_parties) +
        ")");
  }
  const int n = num_parties;
  const int g = block_size;
  std::vector<std::vector<int>> rows(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int m = i / g;  // block of party i
    const int r = i % g;  // residue of party i
    for (int j = 1; j <= n - 1; ++j) {
      const int q = j / g;
      const int s = j % g;
      const int target = (((r + s) % g) + m * g + q * g) % n;
      rows[static_cast<std::size_t>(i)].push_back(target);
    }
  }
  return PortAssignment(std::move(rows));
}

PortAssignment PortAssignment::adversarial_for(
    const SourceConfiguration& config) {
  const int g = config.gcd_of_loads();
  // Every block of g consecutive parties must belong to one source, which
  // holds exactly when the assignment is source-contiguous.
  for (int i = 1; i < config.num_parties(); ++i) {
    if (config.source_of(i) < config.source_of(i - 1)) {
      throw InvalidArgument(
          "PortAssignment::adversarial_for: configuration must be "
          "source-contiguous (use SourceConfiguration::from_loads)");
    }
  }
  for (int i = 0; i < config.num_parties(); ++i) {
    if (config.source_of(i) != config.source_of((i / g) * g)) {
      throw InvalidArgument(
          "PortAssignment::adversarial_for: block " + std::to_string(i / g) +
          " spans two sources; loads must all be divisible by gcd");
    }
  }
  return adversarial(config.num_parties(), g);
}

void PortAssignment::for_each(
    int num_parties, const std::function<void(const PortAssignment&)>& visit) {
  if (num_parties < 1) {
    throw InvalidArgument("PortAssignment::for_each: n must be >= 1");
  }
  if (num_parties > 4) {
    throw InvalidArgument(
        "PortAssignment::for_each: ((n-1)!)^n explodes beyond n=4");
  }
  // Precompute all permutations of each party's neighbor set.
  std::vector<std::vector<std::vector<int>>> options(
      static_cast<std::size_t>(num_parties));
  for (int i = 0; i < num_parties; ++i) {
    std::vector<int> base;
    for (int other = 0; other < num_parties; ++other) {
      if (other != i) base.push_back(other);
    }
    std::sort(base.begin(), base.end());
    do {
      options[static_cast<std::size_t>(i)].push_back(base);
    } while (std::next_permutation(base.begin(), base.end()));
  }
  std::vector<std::size_t> choice(static_cast<std::size_t>(num_parties), 0);
  const std::size_t per_party = options.front().size();
  for (;;) {
    std::vector<std::vector<int>> rows;
    rows.reserve(static_cast<std::size_t>(num_parties));
    for (int i = 0; i < num_parties; ++i) {
      rows.push_back(options[static_cast<std::size_t>(i)]
                            [choice[static_cast<std::size_t>(i)]]);
    }
    visit(PortAssignment(std::move(rows)));
    // Odometer increment.
    int pos = num_parties - 1;
    while (pos >= 0) {
      auto& c = choice[static_cast<std::size_t>(pos)];
      if (++c < per_party) break;
      c = 0;
      --pos;
    }
    if (pos < 0) return;
  }
}

std::vector<PortAssignment> PortAssignment::enumerate_all(int num_parties) {
  std::vector<PortAssignment> out;
  for_each(num_parties,
           [&out](const PortAssignment& pa) { out.push_back(pa); });
  return out;
}

bool PortAssignment::is_automorphism(const std::vector<int>& f) const {
  const int n = num_parties();
  if (static_cast<int>(f.size()) != n) {
    throw InvalidArgument("PortAssignment::is_automorphism: size mismatch");
  }
  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (int v : f) {
    if (v < 0 || v >= n || hit[static_cast<std::size_t>(v)]) {
      throw InvalidArgument(
          "PortAssignment::is_automorphism: f is not a permutation");
    }
    hit[static_cast<std::size_t>(v)] = true;
  }
  for (int i = 0; i < n; ++i) {
    for (int p = 1; p <= n - 1; ++p) {
      if (neighbor(f[static_cast<std::size_t>(i)], p) !=
          f[static_cast<std::size_t>(neighbor(i, p))]) {
        return false;
      }
    }
  }
  return true;
}

std::string PortAssignment::to_string() const {
  std::string out = "Ports[";
  for (std::size_t i = 0; i < neighbor_of_.size(); ++i) {
    if (i != 0) out += " ";
    out += std::to_string(i) + ":(";
    for (std::size_t p = 0; p < neighbor_of_[i].size(); ++p) {
      if (p != 0) out += ",";
      out += std::to_string(neighbor_of_[i][p]);
    }
    out += ")";
  }
  return out + "]";
}

}  // namespace rsb
