// Simplicial homology over Z/2Z.
//
// The framework's selling point is that computation preserves topological
// invariants (Section 1: connectivity obstructions for consensus, homotopy
// types, ...). This module computes the concrete invariants used in such
// arguments for the small complexes the reproduction builds explicitly:
// Betti numbers β_k = dim H_k(K; Z₂) via boundary-matrix ranks over GF(2),
// and the Euler characteristic as a cross-check (χ = Σ (−1)^k f_k =
// Σ (−1)^k β_k).
//
// Costs are exponential in facet dimension (full face enumeration), which
// is exactly the regime of the paper's drawn complexes (n ≤ ~8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/complex.hpp"

namespace rsb {

struct HomologyProfile {
  std::vector<std::size_t> f_vector;  // simplices per dimension
  std::vector<std::size_t> betti;     // β_0, β_1, ..., β_dim
  long long euler_characteristic = 0;

  std::string to_string() const;
};

/// Rank of a GF(2) matrix given as rows of column-index bitsets.
/// `columns` is the width; rows are vectors of set column indices.
std::size_t gf2_rank(std::vector<std::vector<std::uint64_t>> rows,
                     std::size_t columns);

/// Computes the full Z₂ homology profile of a (small) complex.
template <VertexValue Value>
HomologyProfile homology(const ChromaticComplex<Value>& complex);

/// β_0 only — the number of connected components; cheaper (union-find) and
/// usable on larger complexes.
template <VertexValue Value>
std::size_t betti0(const ChromaticComplex<Value>& complex) {
  return complex.connected_components().size();
}

}  // namespace rsb
