// Text renderings of chromatic complexes: Graphviz DOT (1-skeleton with
// facet grouping) and a compact ASCII facet listing. Used by the examples
// and handy when exploring projections interactively.
#pragma once

#include <sstream>
#include <string>

#include "topology/complex.hpp"

namespace rsb {

/// Graphviz DOT of the complex: vertices labeled "(name:value)", one edge
/// per 1-simplex; facets of dimension ≥ 2 are outlined as filled cliques.
/// Paste into `dot -Tsvg` to draw.
template <VertexValue Value>
std::string to_dot(const ChromaticComplex<Value>& complex,
                   const std::string& graph_name = "complex") {
  std::ostringstream out;
  out << "graph " << graph_name << " {\n"
      << "  layout=neato;\n  node [shape=circle, fontsize=10];\n";
  for (const auto& v : complex.vertices()) {
    out << "  \"" << v.name << ":" << ValueTraits<Value>::to_string(v.value)
        << "\";\n";
  }
  // Edges: every 1-face of every facet, deduplicated by the complex's own
  // face set.
  for (const auto& s : complex.all_simplices()) {
    if (s.dimension() != 1) continue;
    const auto& verts = s.vertices();
    out << "  \"" << verts[0].name << ":"
        << ValueTraits<Value>::to_string(verts[0].value) << "\" -- \""
        << verts[1].name << ":"
        << ValueTraits<Value>::to_string(verts[1].value) << "\";\n";
  }
  // Isolated vertices get a visual marker.
  for (const auto& v : complex.isolated_vertices()) {
    out << "  \"" << v.name << ":" << ValueTraits<Value>::to_string(v.value)
        << "\" [style=filled, fillcolor=gold];\n";
  }
  out << "}\n";
  return out.str();
}

/// Compact one-facet-per-line ASCII listing, sorted, with dimensions.
template <VertexValue Value>
std::string to_ascii(const ChromaticComplex<Value>& complex) {
  std::ostringstream out;
  for (const auto& facet : complex.facets()) {
    out << "  dim " << facet.dimension() << "  " << facet.to_string() << "\n";
  }
  return out.str();
}

}  // namespace rsb
