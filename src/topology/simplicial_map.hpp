// Simplicial maps between chromatic complexes.
//
// All maps in the paper are name-preserving: δ(i, x) = (i, y). Such a map is
// represented by the value assignment (i, x) ↦ y. The paper also uses
// name-independent maps, where y depends on x only (Section 3.1,
// "Solvability in fixed time"). Both properties have checkers here, plus a
// backtracking decision procedure for the existence of a name-preserving
// simplicial map between two complexes — the primitive underlying the
// solvability definitions 3.1 and 3.4.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "topology/complex.hpp"

namespace rsb {

/// A name-preserving vertex map from a complex with VFrom values to one with
/// VTo values: (i, x) ↦ (i, image.at({i, x})).
template <VertexValue VFrom, VertexValue VTo>
class NamePreservingMap {
 public:
  using FromVertex = Vertex<VFrom>;
  using ToVertex = Vertex<VTo>;

  NamePreservingMap() = default;

  void set(const FromVertex& from, const VTo& to_value) {
    image_[from] = to_value;
  }

  bool defined_on(const FromVertex& v) const { return image_.count(v) > 0; }

  void unset(const FromVertex& from) { image_.erase(from); }

  ToVertex apply(const FromVertex& v) const {
    auto it = image_.find(v);
    if (it == image_.end()) {
      throw InvalidArgument("NamePreservingMap::apply: vertex " +
                            v.to_string() + " not in domain");
    }
    return ToVertex{v.name, it->second};
  }

  /// Image of a simplex; name-preserving maps keep names distinct, so the
  /// image is again a valid chromatic simplex.
  Simplex<VTo> apply(const Simplex<VFrom>& s) const {
    std::vector<ToVertex> verts;
    verts.reserve(s.vertices().size());
    for (const auto& v : s.vertices()) verts.push_back(apply(v));
    return Simplex<VTo>(std::move(verts));
  }

  const std::map<FromVertex, VTo>& entries() const { return image_; }

  /// δ is simplicial w.r.t. (K, L) iff δ(σ) ∈ L for every σ ∈ K. Because
  /// membership is monotone under faces, checking K's facets suffices.
  bool is_simplicial(const ChromaticComplex<VFrom>& domain,
                     const ChromaticComplex<VTo>& codomain) const {
    for (const auto& facet : domain.facets()) {
      for (const auto& v : facet.vertices()) {
        if (!defined_on(v)) return false;
      }
      if (!codomain.contains(apply(facet))) return false;
    }
    return true;
  }

  /// Name-independence: the assigned value depends on the source value only,
  /// never on the name — for all (i, x), (j, x) in the domain, the images
  /// carry the same value (Section 3.1).
  bool is_name_independent() const {
    std::map<VFrom, VTo> by_value;
    for (const auto& [vertex, to_value] : image_) {
      auto [it, inserted] = by_value.emplace(vertex.value, to_value);
      if (!inserted && it->second != to_value) return false;
    }
    return true;
  }

 private:
  std::map<FromVertex, VTo> image_;
};

namespace detail {

template <VertexValue VFrom, VertexValue VTo>
bool extend_map(const std::vector<Vertex<VFrom>>& domain_vertices,
                std::size_t next,
                const std::vector<Simplex<VFrom>>& domain_facets,
                const ChromaticComplex<VTo>& codomain,
                const std::map<int, std::vector<VTo>>& candidates_by_name,
                bool require_name_independent,
                NamePreservingMap<VFrom, VTo>& partial) {
  if (next == domain_vertices.size()) return true;
  const Vertex<VFrom>& v = domain_vertices[next];
  auto candidates_it = candidates_by_name.find(v.name);
  if (candidates_it == candidates_by_name.end()) return false;
  for (const VTo& to_value : candidates_it->second) {
    partial.set(v, to_value);
    bool feasible = true;
    if (require_name_independent && !partial.is_name_independent()) {
      feasible = false;
    }
    if (feasible) {
      // Prune: every fully-mapped facet must land in the codomain. Facets
      // only partially mapped are deferred.
      for (const auto& facet : domain_facets) {
        bool fully_mapped = true;
        for (const auto& fv : facet.vertices()) {
          if (!partial.defined_on(fv)) {
            fully_mapped = false;
            break;
          }
        }
        if (fully_mapped && !codomain.contains(partial.apply(facet))) {
          feasible = false;
          break;
        }
      }
    }
    if (feasible &&
        extend_map(domain_vertices, next + 1, domain_facets, codomain,
                   candidates_by_name, require_name_independent, partial)) {
      return true;
    }
    partial.unset(v);  // backtrack: stale entries must not leak into pruning
  }
  return false;
}

}  // namespace detail

/// Searches for a name-preserving simplicial map δ : domain → codomain.
/// If `require_name_independent` is set, the map must also be
/// name-independent. Returns the map if one exists.
///
/// Backtracking over the domain's vertices with facet-level pruning; intended
/// for the small complexes produced by projections (their vertex count is at
/// most n).
template <VertexValue VFrom, VertexValue VTo>
std::optional<NamePreservingMap<VFrom, VTo>> find_simplicial_map(
    const ChromaticComplex<VFrom>& domain,
    const ChromaticComplex<VTo>& codomain,
    bool require_name_independent = false) {
  std::map<int, std::vector<VTo>> candidates_by_name;
  for (const auto& v : codomain.vertices()) {
    candidates_by_name[v.name].push_back(v.value);
  }
  const std::vector<Vertex<VFrom>> domain_vertices = domain.vertices();
  const std::vector<Simplex<VFrom>> domain_facets = domain.facets();
  NamePreservingMap<VFrom, VTo> map;
  if (detail::extend_map(domain_vertices, 0, domain_facets, codomain,
                         candidates_by_name, require_name_independent, map)) {
    return map;
  }
  return std::nullopt;
}

/// Convenience: existence-only variant.
template <VertexValue VFrom, VertexValue VTo>
bool exists_simplicial_map(const ChromaticComplex<VFrom>& domain,
                           const ChromaticComplex<VTo>& codomain,
                           bool require_name_independent = false) {
  return find_simplicial_map(domain, codomain, require_name_independent)
      .has_value();
}

}  // namespace rsb
