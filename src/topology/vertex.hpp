// Chromatic vertices (name, value).
//
// Every complex in the paper is chromatic: a vertex is a pair (i, x) where
// the color i ∈ [n] is called the *name* of the vertex (Section 3.1). Names
// here are 0-based (0..n-1); rendering adds 1 where it helps match the
// paper's figures.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "topology/value_traits.hpp"
#include "util/hash.hpp"

namespace rsb {

template <VertexValue Value>
struct Vertex {
  int name = 0;
  Value value{};

  friend auto operator<=>(const Vertex&, const Vertex&) = default;

  std::uint64_t hash() const noexcept {
    return hash_combine(static_cast<std::uint64_t>(name),
                        ValueTraits<Value>::hash(value));
  }

  std::string to_string() const {
    return "(" + std::to_string(name) + "," +
           ValueTraits<Value>::to_string(value) + ")";
  }
};

template <VertexValue Value>
struct VertexHash {
  std::size_t operator()(const Vertex<Value>& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};

}  // namespace rsb
