// Umbrella header for the chromatic simplicial topology substrate.
//
// Provides: vertices and simplices with names (colors), complexes
// represented by their facet sets, name-preserving / name-independent
// simplicial maps with an existence search, the consistency projection π of
// Eq. (3), and symmetry checks for output complexes.
#pragma once

#include "topology/complex.hpp"       // IWYU pragma: export
#include "topology/projection.hpp"    // IWYU pragma: export
#include "topology/simplex.hpp"       // IWYU pragma: export
#include "topology/simplicial_map.hpp"  // IWYU pragma: export
#include "topology/symmetry.hpp"      // IWYU pragma: export
#include "topology/value_traits.hpp"  // IWYU pragma: export
#include "topology/vertex.hpp"        // IWYU pragma: export
