// The consistency projection π (Eq. 3 of the paper).
//
// For a facet σ = {(i, v_i) : i ∈ I} of a chromatic complex, π(σ) is the
// complex on V(σ) in which a set of vertices forms a simplex iff all its
// vertices hold the *same value*. The facets of π(σ) are therefore exactly
// the value-equivalence classes of σ. Applying π to every facet of a complex
// K and taking the union yields π(K) ⊆ K.
//
// The knowledge-based variant π̃ (Eq. 5) lives in src/core/consistency.hpp:
// it needs the communication model to evaluate the relation i ~_t j.
#pragma once

#include <map>
#include <vector>

#include "topology/complex.hpp"
#include "util/partitions.hpp"

namespace rsb {

/// π(σ): the sub-complex of σ whose facets are σ's value-equivalence classes.
template <VertexValue Value>
ChromaticComplex<Value> project_facet(const Simplex<Value>& facet) {
  std::map<Value, std::vector<Vertex<Value>>> classes;
  for (const auto& v : facet.vertices()) classes[v.value].push_back(v);
  ChromaticComplex<Value> out;
  for (auto& [value, members] : classes) {
    out.add_simplex(Simplex<Value>(std::move(members)));
  }
  return out;
}

/// π(K) = ∪_{σ facet of K} π(σ).
template <VertexValue Value>
ChromaticComplex<Value> project_complex(const ChromaticComplex<Value>& complex) {
  ChromaticComplex<Value> out;
  for (const auto& facet : complex.facets()) {
    out.merge(project_facet(facet));
  }
  return out;
}

/// The partition of the facet's names by value equality, in canonical
/// block-index form (util/partitions.hpp): entry p[r] is the block of the
/// r-th smallest name. This is the combinatorial shadow of π(σ): its block
/// sizes are (dim+1) of π(σ)'s facets.
template <VertexValue Value>
std::vector<int> partition_by_value(const Simplex<Value>& facet) {
  std::map<Value, int> value_label;
  std::vector<int> labels;
  labels.reserve(facet.vertices().size());
  for (const auto& v : facet.vertices()) {
    auto [it, inserted] =
        value_label.emplace(v.value, static_cast<int>(value_label.size()));
    labels.push_back(it->second);
  }
  return canonical_blocks(labels);
}

/// Sorted multiset of class sizes of π(σ) — i.e. of (dim + 1) over facets of
/// the projection. Both characterization theorems are phrased in terms of
/// these sizes.
template <VertexValue Value>
std::vector<int> class_sizes(const Simplex<Value>& facet) {
  std::vector<int> sizes = block_sizes(partition_by_value(facet));
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

}  // namespace rsb
