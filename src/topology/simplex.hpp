// Simplices of chromatic complexes.
//
// A simplex is a non-empty set of vertices with pairwise-distinct names
// (chromatic complexes never put two vertices of the same color in one
// simplex). Simplices are value types stored as name-sorted vectors, so
// equality and ordering are structural.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "topology/vertex.hpp"
#include "util/error.hpp"

namespace rsb {

template <VertexValue Value>
class Simplex {
 public:
  using VertexT = Vertex<Value>;

  Simplex() = default;

  /// Builds a simplex from vertices; sorts by name and validates that names
  /// are pairwise distinct. Throws InvalidArgument on a repeated name.
  explicit Simplex(std::vector<VertexT> vertices)
      : vertices_(std::move(vertices)) {
    std::sort(vertices_.begin(), vertices_.end(),
              [](const VertexT& a, const VertexT& b) { return a.name < b.name; });
    for (std::size_t i = 1; i < vertices_.size(); ++i) {
      if (vertices_[i - 1].name == vertices_[i].name) {
        throw InvalidArgument(
            "Simplex: two vertices share the name " +
            std::to_string(vertices_[i].name) +
            " (chromatic simplices have pairwise-distinct names)");
      }
    }
  }

  Simplex(std::initializer_list<VertexT> vertices)
      : Simplex(std::vector<VertexT>(vertices)) {}

  bool empty() const noexcept { return vertices_.empty(); }
  int vertex_count() const noexcept { return static_cast<int>(vertices_.size()); }

  /// dim(σ) = |V(σ)| − 1; the empty simplex has dimension −1 by convention.
  int dimension() const noexcept { return vertex_count() - 1; }

  const std::vector<VertexT>& vertices() const noexcept { return vertices_; }

  /// The names (colors) of the vertices, ascending.
  std::vector<int> names() const {
    std::vector<int> out;
    out.reserve(vertices_.size());
    for (const auto& v : vertices_) out.push_back(v.name);
    return out;
  }

  /// The value held by the vertex named `name`; throws if absent.
  const Value& value_of(int name) const {
    const VertexT* v = find(name);
    if (v == nullptr) {
      throw InvalidArgument("Simplex::value_of: no vertex named " +
                            std::to_string(name));
    }
    return v->value;
  }

  bool has_name(int name) const noexcept { return find(name) != nullptr; }

  bool contains_vertex(const VertexT& v) const noexcept {
    const VertexT* found = find(v.name);
    return found != nullptr && found->value == v.value;
  }

  /// σ′ ⊆ σ as vertex sets.
  bool contains(const Simplex& other) const noexcept {
    return std::all_of(
        other.vertices_.begin(), other.vertices_.end(),
        [this](const VertexT& v) { return contains_vertex(v); });
  }

  /// The face of this simplex induced by a set of names (names not present
  /// are ignored). Returns an empty simplex if no name matches.
  Simplex face(const std::vector<int>& names) const {
    std::vector<VertexT> verts;
    for (int name : names) {
      if (const VertexT* v = find(name)) verts.push_back(*v);
    }
    return Simplex(std::move(verts));
  }

  /// All non-empty faces (subsets), including the simplex itself.
  /// Exponential in the vertex count; intended for small simplices.
  std::vector<Simplex> all_faces() const {
    std::vector<Simplex> faces;
    const std::size_t n = vertices_.size();
    if (n > 20) {
      throw InvalidArgument("Simplex::all_faces: simplex too large");
    }
    for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
      std::vector<VertexT> verts;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) verts.push_back(vertices_[i]);
      }
      faces.emplace_back(std::move(verts));
    }
    return faces;
  }

  friend auto operator<=>(const Simplex&, const Simplex&) = default;

  std::uint64_t hash() const noexcept {
    std::uint64_t seed = 0;
    for (const auto& v : vertices_) seed = hash_combine(seed, v.hash());
    return seed;
  }

  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
      if (i != 0) out += ",";
      out += vertices_[i].to_string();
    }
    return out + "}";
  }

 private:
  const VertexT* find(int name) const noexcept {
    auto it = std::lower_bound(
        vertices_.begin(), vertices_.end(), name,
        [](const VertexT& v, int n) { return v.name < n; });
    return (it != vertices_.end() && it->name == name) ? &*it : nullptr;
  }

  std::vector<VertexT> vertices_;  // sorted by name, names distinct
};

template <VertexValue Value>
struct SimplexHash {
  std::size_t operator()(const Simplex<Value>& s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace rsb
