#include "topology/homology.hpp"

#include <map>

namespace rsb {

std::string HomologyProfile::to_string() const {
  std::string out = "f=(";
  for (std::size_t i = 0; i < f_vector.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(f_vector[i]);
  }
  out += ") β=(";
  for (std::size_t i = 0; i < betti.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(betti[i]);
  }
  return out + ") χ=" + std::to_string(euler_characteristic);
}

std::size_t gf2_rank(std::vector<std::vector<std::uint64_t>> rows,
                     std::size_t columns) {
  const std::size_t words = (columns + 63) / 64;
  for (auto& row : rows) row.resize(words, 0);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < columns && rank < rows.size(); ++col) {
    const std::size_t word = col / 64;
    const std::uint64_t mask = 1ULL << (col % 64);
    // Find a pivot row at or below `rank` with this column set.
    std::size_t pivot = rank;
    while (pivot < rows.size() && !(rows[pivot][word] & mask)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != rank && (rows[r][word] & mask)) {
        for (std::size_t w = 0; w < words; ++w) rows[r][w] ^= rows[rank][w];
      }
    }
    ++rank;
  }
  return rank;
}

namespace {

template <VertexValue Value>
HomologyProfile homology_impl(const ChromaticComplex<Value>& complex) {
  HomologyProfile profile;
  if (complex.empty()) return profile;

  const int dim = complex.dimension();
  // Index all simplices per dimension.
  std::vector<std::map<Simplex<Value>, std::size_t>> index(
      static_cast<std::size_t>(dim + 1));
  for (const auto& s : complex.all_simplices()) {
    auto& level = index[static_cast<std::size_t>(s.dimension())];
    level.emplace(s, level.size());
  }
  profile.f_vector.resize(static_cast<std::size_t>(dim + 1));
  for (int k = 0; k <= dim; ++k) {
    profile.f_vector[static_cast<std::size_t>(k)] =
        index[static_cast<std::size_t>(k)].size();
  }

  // rank ∂_k for k = 1..dim (∂_0 = 0).
  std::vector<std::size_t> boundary_rank(static_cast<std::size_t>(dim + 2), 0);
  for (int k = 1; k <= dim; ++k) {
    const auto& rows_index = index[static_cast<std::size_t>(k)];
    const auto& cols_index = index[static_cast<std::size_t>(k - 1)];
    std::vector<std::vector<std::uint64_t>> rows(rows_index.size());
    const std::size_t words = (cols_index.size() + 63) / 64;
    for (const auto& [simplex, row] : rows_index) {
      rows[row].assign(words, 0);
      const auto& verts = simplex.vertices();
      for (std::size_t drop = 0; drop < verts.size(); ++drop) {
        std::vector<Vertex<Value>> face_verts;
        face_verts.reserve(verts.size() - 1);
        for (std::size_t i = 0; i < verts.size(); ++i) {
          if (i != drop) face_verts.push_back(verts[i]);
        }
        const std::size_t col =
            cols_index.at(Simplex<Value>(std::move(face_verts)));
        rows[row][col / 64] |= 1ULL << (col % 64);
      }
    }
    boundary_rank[static_cast<std::size_t>(k)] =
        gf2_rank(std::move(rows), cols_index.size());
  }

  // β_k = (f_k − rank ∂_k) − rank ∂_{k+1}.
  profile.betti.resize(static_cast<std::size_t>(dim + 1));
  for (int k = 0; k <= dim; ++k) {
    profile.betti[static_cast<std::size_t>(k)] =
        profile.f_vector[static_cast<std::size_t>(k)] -
        boundary_rank[static_cast<std::size_t>(k)] -
        boundary_rank[static_cast<std::size_t>(k + 1)];
  }

  long long chi = 0;
  for (int k = 0; k <= dim; ++k) {
    const long long count = static_cast<long long>(
        profile.f_vector[static_cast<std::size_t>(k)]);
    chi += (k % 2 == 0) ? count : -count;
  }
  profile.euler_characteristic = chi;
  return profile;
}

}  // namespace

template <VertexValue Value>
HomologyProfile homology(const ChromaticComplex<Value>& complex) {
  return homology_impl(complex);
}

template HomologyProfile homology(const ChromaticComplex<int>&);
template HomologyProfile homology(const ChromaticComplex<BitString>&);
template HomologyProfile homology(const ChromaticComplex<std::uint64_t>&);

}  // namespace rsb
