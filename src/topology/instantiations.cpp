// Explicit instantiations of the topology templates for the value types the
// library uses, keeping client translation units lean and catching template
// errors at library build time.
#include "topology/topology.hpp"

namespace rsb {

template struct Vertex<int>;
template class Simplex<int>;
template class ChromaticComplex<int>;

template struct Vertex<BitString>;
template class Simplex<BitString>;
template class ChromaticComplex<BitString>;

template struct Vertex<std::uint64_t>;
template class Simplex<std::uint64_t>;
template class ChromaticComplex<std::uint64_t>;

template ChromaticComplex<int> project_facet(const Simplex<int>&);
template ChromaticComplex<BitString> project_facet(const Simplex<BitString>&);
template ChromaticComplex<std::uint64_t> project_facet(
    const Simplex<std::uint64_t>&);

template ChromaticComplex<int> project_complex(const ChromaticComplex<int>&);
template ChromaticComplex<BitString> project_complex(
    const ChromaticComplex<BitString>&);

template bool is_symmetric(const ChromaticComplex<int>&);

}  // namespace rsb
