// Traits for the "value" part of a chromatic vertex (i, value).
//
// Complexes in this library are templated on their value type: the output
// complex carries small integers, the realization complex carries
// BitStrings, the protocol complex carries interned knowledge ids. A value
// type must be regular (copyable, equality-comparable, totally ordered) and
// provide a hash and a printable rendering through this trait.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>

#include "util/bitstring.hpp"

namespace rsb {

template <typename T>
struct ValueTraits;

template <>
struct ValueTraits<int> {
  static std::uint64_t hash(int v) noexcept {
    return static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
  }
  static std::string to_string(int v) { return std::to_string(v); }
};

template <>
struct ValueTraits<std::uint64_t> {
  static std::uint64_t hash(std::uint64_t v) noexcept {
    return v * 0x9e3779b97f4a7c15ULL;
  }
  static std::string to_string(std::uint64_t v) { return std::to_string(v); }
};

template <>
struct ValueTraits<BitString> {
  static std::uint64_t hash(const BitString& v) noexcept { return v.hash(); }
  static std::string to_string(const BitString& v) { return v.to_string(); }
};

template <>
struct ValueTraits<std::string> {
  static std::uint64_t hash(const std::string& v) noexcept {
    return std::hash<std::string>{}(v);
  }
  static std::string to_string(const std::string& v) { return v; }
};

/// Concept satisfied by types usable as chromatic vertex values.
template <typename T>
concept VertexValue = std::regular<T> && std::totally_ordered<T> &&
    requires(const T& v) {
      { ValueTraits<T>::hash(v) } -> std::convertible_to<std::uint64_t>;
      { ValueTraits<T>::to_string(v) } -> std::convertible_to<std::string>;
    };

}  // namespace rsb
