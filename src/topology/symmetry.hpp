// Symmetry of chromatic complexes.
//
// The paper requires output complexes of symmetry-breaking tasks to be
// *symmetric*: stable under permutations of the names (Section 3.1). That
// is, if {(i, v_i) : i ∈ I} ∈ O then {(i, v_{π(i)}) : i ∈ I} ∈ O for every
// permutation π of I.
#pragma once

#include <algorithm>
#include <vector>

#include "topology/complex.hpp"

namespace rsb {

/// Applies a name permutation to a facet: vertex (i, v_i) becomes
/// (i, v_{perm(i)}). `perm` maps positions within the facet's sorted name
/// list; it must be a permutation of {0, ..., |σ|-1}.
template <VertexValue Value>
Simplex<Value> permute_values(const Simplex<Value>& facet,
                              const std::vector<int>& perm) {
  const auto& verts = facet.vertices();
  if (perm.size() != verts.size()) {
    throw InvalidArgument("permute_values: permutation size mismatch");
  }
  std::vector<Vertex<Value>> out;
  out.reserve(verts.size());
  for (std::size_t pos = 0; pos < verts.size(); ++pos) {
    out.push_back(Vertex<Value>{
        verts[pos].name, verts[static_cast<std::size_t>(perm[pos])].value});
  }
  return Simplex<Value>(std::move(out));
}

/// Exhaustive symmetry check: every value-permutation of every facet must be
/// a simplex of the complex. Cost is |facets| · n! · membership; intended for
/// the small output complexes of tasks (n ≤ 8 or so).
template <VertexValue Value>
bool is_symmetric(const ChromaticComplex<Value>& complex) {
  for (const auto& facet : complex.facets()) {
    const std::size_t n = facet.vertices().size();
    std::vector<int> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<int>(i);
    do {
      if (!complex.contains(permute_values(facet, perm))) return false;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  return true;
}

}  // namespace rsb
