#include "sim/scheduler.hpp"

#include "util/error.hpp"

namespace rsb::sim {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSynchronous:
      return "synchronous";
    case SchedulerKind::kRandomDelay:
      return "random-delay";
    case SchedulerKind::kAdversarialStarve:
      return "starve";
  }
  return "?";
}

SchedulerSpec SchedulerSpec::random_delay(int max_delay,
                                          std::uint64_t sched_seed) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kRandomDelay;
  spec.max_delay = max_delay;
  spec.sched_seed = sched_seed;
  return spec;
}

SchedulerSpec SchedulerSpec::adversarial_starve(std::vector<int> starved,
                                                int max_delay) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kAdversarialStarve;
  spec.max_delay = max_delay;
  spec.starved = std::move(starved);
  return spec;
}

void SchedulerSpec::validate(int num_parties) const {
  if (max_delay < 0) {
    throw InvalidArgument("SchedulerSpec: max_delay must be >= 0");
  }
  for (int party : starved) {
    if (party < 0 || party >= num_parties) {
      throw InvalidArgument("SchedulerSpec: starved party " +
                            std::to_string(party) + " outside [0," +
                            std::to_string(num_parties) + ")");
    }
  }
}

std::string SchedulerSpec::to_string() const {
  switch (kind) {
    case SchedulerKind::kSynchronous:
      return "synchronous";
    case SchedulerKind::kRandomDelay:
      return "random-delay(" + std::to_string(max_delay) + ")";
    case SchedulerKind::kAdversarialStarve: {
      std::string out = "starve{";
      for (std::size_t i = 0; i < starved.size(); ++i) {
        if (i != 0) out += ",";
        out += std::to_string(starved[i]);
      }
      return out + "}(" + std::to_string(max_delay) + ")";
    }
  }
  return "?";
}

Scheduler::Scheduler(const SchedulerSpec& spec, int num_parties,
                     std::uint64_t run_seed)
    : kind_(spec.kind),
      max_delay_(spec.max_delay),
      rng_(derive_seed(spec.sched_seed, run_seed)) {
  spec.validate(num_parties);
  if (kind_ == SchedulerKind::kAdversarialStarve) {
    starved_.assign(static_cast<std::size_t>(num_parties), false);
    for (int party : spec.starved) {
      starved_[static_cast<std::size_t>(party)] = true;
    }
  }
}

int Scheduler::delivery_round(int round, int sender, int receiver) {
  switch (kind_) {
    case SchedulerKind::kSynchronous:
      return round;
    case SchedulerKind::kRandomDelay:
      if (max_delay_ <= 0) return round;
      return round + static_cast<int>(
                         rng_.below(static_cast<std::uint64_t>(max_delay_) + 1));
    case SchedulerKind::kAdversarialStarve: {
      const bool touches_starved =
          starved_[static_cast<std::size_t>(sender)] ||
          (receiver >= 0 && starved_[static_cast<std::size_t>(receiver)]);
      return touches_starved ? round + max_delay_ : round;
    }
  }
  return round;
}

}  // namespace rsb::sim
