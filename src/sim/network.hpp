// Round-based network simulator with physical message routing, pluggable
// delivery schedulers, and crash-stop faults.
//
// This is the executable counterpart of the paper's model (Section 2.1):
// n anonymous, identical parties proceed in rounds; in the blackboard
// model a party appends messages to an anonymous shared board visible to
// everyone, and in the message-passing model a party sends along its
// privately-numbered ports and the message is physically delivered to the
// other endpoint of the edge. Correlated randomness comes from a
// SourceBank: parties wired to one source draw identical randomness.
//
// Two adversaries beyond the port wiring are optional (both default off,
// leaving the classic fault-free synchronous lockstep bit-for-bit intact):
//
//  * a Scheduler (sim/scheduler.hpp) maps each transmitted message to a
//    delivery round >= its send round; held messages are merged into the
//    receiving round's canonical sorted delivery, so agents see late
//    traffic exactly as they see fresh traffic;
//  * a crash schedule (sim/fault.hpp): a party with crash round r acts
//    normally through round r-1 and halts at the start of round r — it
//    transmits nothing, its receive_phase is never called again, messages
//    addressed to it are dropped at delivery time, and it never decides
//    (decisions made before r stand). Source word streams are drawn
//    per round regardless of crashes, so the surviving parties' randomness
//    is independent of the fault pattern.
//
// Agents are written against the Agent interface below. Anonymity is by
// construction: an agent never learns its global index (the factory receives
// it only so that tests can inject externally-derived roles, e.g. the
// V1/V2 split CreateMatching assumes as given).
//
// Each round a party receives one 64-bit random word from its source (the
// paper's one bit per round is word bit 0; drawing a word instead of a bit
// only rescales round counts by a constant and keeps lockstep protocols
// that need log n random bits per decision simple).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/models.hpp"
#include "randomness/config.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace rsb::sim {

/// A message delivered on a receiving port.
struct PortMessage {
  int port = 0;  // the *receiver's* port number (1-based)
  std::string payload;

  friend auto operator<=>(const PortMessage&, const PortMessage&) = default;
};

/// What an agent may transmit during the send phase of a round.
class Outbox {
 public:
  /// Blackboard: append a message to the anonymous board.
  void post(std::string payload);

  /// Message passing: send on one of the agent's ports (1-based).
  void send(int port, std::string payload);

  /// Message passing: send the same payload on every port.
  void send_all(const std::string& payload);

 private:
  friend class Network;
  Outbox(Model model, int num_ports);

  Model model_;
  int num_ports_;
  std::vector<std::string> posts_;                    // blackboard
  std::vector<std::pair<int, std::string>> sends_;    // (port, payload)
};

/// What an agent observes during the receive phase of a round.
struct Delivery {
  /// Blackboard: the messages posted this round by the *other* parties,
  /// sorted lexicographically (the board is anonymous and unordered).
  std::vector<std::string> board;

  /// Message passing: messages by receiving port, sorted by (port, payload).
  std::vector<PortMessage> by_port;
};

class Agent {
 public:
  virtual ~Agent() = default;

  struct Init {
    int num_parties = 0;
    Model model = Model::kBlackboard;
  };

  /// Called once before round 1.
  virtual void begin(const Init& init) { (void)init; }

  /// Phase 1 of a round: the agent sees this round's random word (shared
  /// with every party on the same source) and transmits.
  virtual void send_phase(int round, std::uint64_t random_word,
                          Outbox& out) = 0;

  /// Phase 2 of a round: delivery of everything transmitted this round.
  virtual void receive_phase(int round, const Delivery& delivery) = 0;

  bool decided() const noexcept { return decided_; }
  std::int64_t output() const;

 protected:
  /// Irrevocably decide the agent's output.
  void decide(std::int64_t value);

 private:
  bool decided_ = false;
  std::int64_t output_ = 0;
};

// A Network (with its agents and source streams) is single-threaded state:
// one run mutates exactly one network. Parallel batch drivers
// (Engine::run_batch over an agent-backed Experiment with threads > 1)
// build an independent Network per run on each worker, so the AgentFactory
// handed to such a batch is invoked concurrently — a factory (and any state its agents share through
// it) must be thread-safe; capture-free factories always are.
class Network {
 public:
  using AgentFactory = std::function<std::unique_ptr<Agent>(int party)>;

  /// `ports` must be set iff model == kMessagePassing. `scheduler` selects
  /// the delivery adversary (default: synchronous lockstep; the per-run
  /// delay stream is derived from `seed`). `crash_round` is the run's
  /// crash schedule — either empty (no faults) or one entry per party,
  /// crash round or -1 (see sim/fault.hpp; FaultPlan::draw produces it).
  Network(Model model, const SourceConfiguration& config, std::uint64_t seed,
          std::optional<PortAssignment> ports, const AgentFactory& factory,
          const SchedulerSpec& scheduler = SchedulerSpec{},
          const std::vector<int>& crash_round = {});

  struct Outcome {
    bool all_decided = false;  // every surviving party decided
    int rounds = 0;
    std::vector<std::int64_t> outputs;  // defined where decided
    std::vector<int> decision_round;    // -1 where undecided
  };

  /// Runs one round; returns true iff every party that has not crashed by
  /// the end of this round has decided (every party, when fault-free).
  bool step();

  /// Runs until all agents decide or `max_rounds` elapse.
  Outcome run(int max_rounds);

  int round() const noexcept { return round_; }
  int num_parties() const noexcept { return config_.num_parties(); }
  const Agent& agent(int party) const;

 private:
  /// A transmitted-but-not-yet-delivered message held by the scheduler.
  /// Blackboard posts keep the sender (the board excludes own posts);
  /// port messages are pre-routed to (receiver, receiving port).
  struct HeldPost {
    int due = 0;
    int sender = 0;
    std::string payload;
  };
  struct HeldSend {
    int due = 0;
    int receiver = 0;
    int port = 0;  // the receiver's port
    std::string payload;
  };

  /// True iff `party` still participates in round `round` (crash-stop:
  /// a party halts at the start of its crash round).
  bool alive_in_round(int party, int round) const noexcept;

  Model model_;
  SourceConfiguration config_;
  std::optional<PortAssignment> ports_;
  std::vector<Xoshiro256StarStar> source_words_;  // one word stream per source
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<int> decision_round_;
  std::vector<int> crash_round_;  // empty = fault-free
  Scheduler scheduler_;
  std::vector<HeldPost> held_posts_;
  std::vector<HeldSend> held_sends_;
  int round_ = 0;
};

}  // namespace rsb::sim
