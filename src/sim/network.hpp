// Round-based network simulator with physical message routing, pluggable
// delivery schedulers, crash-stop faults, and arena-interned payloads.
//
// This is the executable counterpart of the paper's model (Section 2.1):
// n anonymous, identical parties proceed in rounds; in the blackboard
// model a party appends messages to an anonymous shared board visible to
// everyone, and in the message-passing model a party sends along its
// privately-numbered ports and the message is physically delivered to the
// other endpoint of the edge. Correlated randomness comes from a
// SourceBank: parties wired to one source draw identical randomness.
//
// Zero-copy data layout: message payloads are interned once into a per-run
// PayloadArena (sim/payload.hpp) and travel as 4-byte PayloadIds through
// the outboxes, the held (delayed) queues, and the flat per-round delivery
// buffers — a broadcast (Outbox::send_all, or a blackboard post fanned out
// to n−1 receivers) shares a single interned copy of its bytes. Each round
// the simulator routes all transmissions into one flat buffer, sorts it by
// (receiver, port, payload bytes) — byte-identical to the historical
// per-receiver std::string sort — and hands every agent a Delivery of
// spans into that buffer.
//
// Two adversaries beyond the port wiring are optional (both default off,
// leaving the classic fault-free synchronous lockstep bit-for-bit intact):
//
//  * a Scheduler (sim/scheduler.hpp) maps each transmitted message to a
//    delivery round >= its send round; held messages are merged into the
//    receiving round's canonical sorted delivery, so agents see late
//    traffic exactly as they see fresh traffic;
//  * a crash schedule (sim/fault.hpp): a party with crash round r acts
//    normally through round r-1 and halts at the start of round r — it
//    transmits nothing, its receive_phase is never called again, messages
//    addressed to it are dropped at delivery time, and it never decides
//    (decisions made before r stand). Source word streams are drawn
//    per round regardless of crashes, so the surviving parties' randomness
//    is independent of the fault pattern.
//
// Agents are written against the Agent interface below. Anonymity is by
// construction: an agent never learns its global index (the factory receives
// it only so that tests can inject externally-derived roles, e.g. the
// V1/V2 split CreateMatching assumes as given).
//
// Each round a party receives one 64-bit random word from its source (the
// paper's one bit per round is word bit 0; drawing a word instead of a bit
// only rescales round counts by a constant and keeps lockstep protocols
// that need log n random bits per decision simple).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "model/models.hpp"
#include "randomness/config.hpp"
#include "sim/payload.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace rsb::graph {
class Topology;
}  // namespace rsb::graph

namespace rsb::sim {

/// A message delivered on a receiving port. The payload id resolves
/// against the round's arena via Delivery::text.
struct PortMessage {
  int port = 0;  // the *receiver's* port number (1-based)
  PayloadId payload = 0;

  friend bool operator==(const PortMessage&, const PortMessage&) = default;
};

class Network;

/// What an agent may transmit during the send phase of a round. Payload
/// bytes are interned into the run's arena at the call; the views passed
/// in need only live for the duration of the call. Each transmit returns
/// the interned PayloadId — stable for the rest of the run and canonical
/// per byte string — so an agent that later compares its own transmission
/// against received ids can keep the 4-byte id instead of a copy of the
/// bytes (see RefinementAgent's rank agreement).
class Outbox {
 public:
  /// Blackboard: append a message to the anonymous board.
  PayloadId post(std::string_view payload);

  /// Message passing: send on one of the agent's ports (1-based).
  PayloadId send(int port, std::string_view payload);

  /// Message passing: send the same payload on every port. The payload is
  /// interned exactly once and the id shared across all ports.
  PayloadId send_all(std::string_view payload);

 private:
  friend class Network;
  Outbox(Network* net, int sender, Model model, int num_ports);

  Network* net_;
  int sender_;
  Model model_;
  int num_ports_;
};

/// What an agent observes during the receive phase of a round: spans into
/// the network's flat per-round delivery buffers plus the arena that
/// resolves payload ids to bytes.
///
/// Lifetime contract (the price of zero-copy): the spans are valid only
/// for the duration of the receive_phase call — the buffers are recycled
/// next round (the board span is recycled per *receiver*). Payload ids and
/// the string_views text() returns stay valid for the rest of the run
/// (the arena is reset only between runs), so agents that accumulate
/// state across rounds may keep either, but must copy the spans' contents
/// out if they need the per-round structure later.
struct Delivery {
  /// Blackboard: the messages posted this round by the *other* parties,
  /// sorted lexicographically by bytes (the board is anonymous and
  /// unordered).
  std::span<const PayloadId> board;

  /// Message passing: messages by receiving port, sorted by
  /// (port, payload bytes).
  std::span<const PortMessage> by_port;

  const PayloadArena* arena = nullptr;

  std::string_view text(PayloadId id) const noexcept {
    return arena->view(id);
  }
  std::string_view text(const PortMessage& message) const noexcept {
    return arena->view(message.payload);
  }
};

class Agent {
 public:
  virtual ~Agent() = default;

  struct Init {
    int num_parties = 0;
    Model model = Model::kBlackboard;
    /// Message passing: how many ports THIS party owns — n−1 on the
    /// all-to-all wiring, its graph degree on a sparse Topology. 0 on the
    /// blackboard. Locality-aware agents size their fan-out from this
    /// instead of num_parties.
    int num_ports = 0;
    /// Message passing: the largest port count over all parties (Δ on a
    /// Topology) — the palette bound (Δ+1)-coloring agents need.
    int max_degree = 0;
  };

  /// Called once before round 1.
  virtual void begin(const Init& init) { (void)init; }

  /// Phase 1 of a round: the agent sees this round's random word (shared
  /// with every party on the same source) and transmits.
  virtual void send_phase(int round, std::uint64_t random_word,
                          Outbox& out) = 0;

  /// Phase 2 of a round: delivery of everything transmitted this round.
  virtual void receive_phase(int round, const Delivery& delivery) = 0;

  bool decided() const noexcept { return decided_; }
  std::int64_t output() const;

 protected:
  /// Irrevocably decide the agent's output.
  void decide(std::int64_t value);

 private:
  bool decided_ = false;
  std::int64_t output_ = 0;
};

// A Network (with its agents and source streams) is single-threaded state:
// one run mutates exactly one network. Parallel batch drivers
// (Engine::run_batch over an agent-backed Experiment with threads > 1)
// build an independent Network per run on each worker, so the AgentFactory
// handed to such a batch is invoked concurrently — a factory (and any state its agents share through
// it) must be thread-safe; capture-free factories always are.
class Network {
 public:
  using AgentFactory = std::function<std::unique_ptr<Agent>(int party)>;

  /// `ports` must be set iff model == kMessagePassing and no `topology` is
  /// given. `scheduler` selects the delivery adversary (default:
  /// synchronous lockstep; the per-run delay stream is derived from
  /// `seed`). `crash_round` is the run's crash schedule — either empty (no
  /// faults) or one entry per party, crash round or -1 (see sim/fault.hpp;
  /// FaultPlan::draw produces it). `arena` is the payload pool the run
  /// interns into: pass a per-worker arena (engine batches lend
  /// RunContext::arena) to amortize message allocations across runs — it
  /// is reset here — or null to let the network own a private one.
  /// `topology` (message passing only; must outlive the network, not
  /// owned) replaces the PortAssignment wiring with the graph's canonical
  /// port numbering: party p's port k leads to its k-th smallest neighbor,
  /// so each party owns degree(p) ports and a round's routing work is
  /// O(messages) = O(edges) on a sparse graph rather than O(n²).
  Network(Model model, const SourceConfiguration& config, std::uint64_t seed,
          std::optional<PortAssignment> ports, const AgentFactory& factory,
          const SchedulerSpec& scheduler = SchedulerSpec{},
          const std::vector<int>& crash_round = {},
          PayloadArena* arena = nullptr,
          const graph::Topology* topology = nullptr);

  struct Outcome {
    bool all_decided = false;  // every surviving party decided
    int rounds = 0;
    std::vector<std::int64_t> outputs;  // defined where decided
    std::vector<int> decision_round;    // -1 where undecided
  };

  /// Runs one round; returns true iff every party that has not crashed by
  /// the end of this round has decided (every party, when fault-free).
  bool step();

  /// Runs until all agents decide or `max_rounds` elapse.
  Outcome run(int max_rounds);

  int round() const noexcept { return round_; }
  int num_parties() const noexcept { return config_.num_parties(); }
  const Agent& agent(int party) const;

  /// The run's payload pool (diagnostics: arena size pins intern sharing).
  const PayloadArena& arena() const noexcept { return *arena_; }

  /// Total port messages routed to a delivery over the run so far (held
  /// messages count once, in the round they fall due). On a topology this
  /// is bounded by 2·|E| per broadcast round — the O(edges) claim
  /// bench_graph_locality pins.
  std::uint64_t messages_routed() const noexcept { return messages_routed_; }

 private:
  friend class Outbox;

  /// A transmitted-but-not-yet-delivered message held by the scheduler.
  /// Blackboard posts keep the sender (the board excludes own posts);
  /// port messages are pre-routed to (receiver, receiving port).
  struct HeldPost {
    int due = 0;
    int sender = 0;
    PayloadId payload = 0;
  };
  struct HeldSend {
    int due = 0;
    int receiver = 0;
    int port = 0;  // the receiver's port
    PayloadId payload = 0;
  };
  /// One transmission of the current round, in outbox order (sender index,
  /// then transmission order — the scheduler's stream-consumption order).
  struct Post {
    int sender = 0;
    PayloadId payload = 0;
  };
  struct Send {
    int sender = 0;
    int port = 0;  // the sender's port
    PayloadId payload = 0;
  };
  /// A message due this round, routed to its receiver.
  struct RoutedPost {
    int sender = 0;
    PayloadId payload = 0;
  };
  struct RoutedSend {
    int receiver = 0;
    PortMessage message;
  };

  /// True iff `party` still participates in round `round` (crash-stop:
  /// a party halts at the start of its crash round).
  bool alive_in_round(int party, int round) const noexcept;

  void deliver_blackboard();
  void deliver_message_passing();

  Model model_;
  SourceConfiguration config_;
  std::optional<PortAssignment> ports_;
  const graph::Topology* topology_ = nullptr;  // not owned; null = clique
  std::vector<Xoshiro256StarStar> source_words_;  // one word stream per source
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<int> decision_round_;
  std::vector<int> crash_round_;  // empty = fault-free
  Scheduler scheduler_;
  PayloadArena* arena_;                         // the run's payload pool
  std::unique_ptr<PayloadArena> owned_arena_;   // when none was lent
  std::vector<std::uint64_t> word_of_source_;   // per-round scratch
  std::vector<Post> round_posts_;    // current round's transmissions
  std::vector<Send> round_sends_;
  std::vector<RoutedPost> due_posts_;  // due this round, pre-sort scratch
  std::vector<RoutedSend> due_sends_;
  std::vector<PortMessage> by_port_flat_;  // due_sends_' messages, flat
  std::vector<PayloadId> board_scratch_;   // per-receiver board view
  std::vector<HeldPost> held_posts_;
  std::vector<HeldSend> held_sends_;
  std::uint64_t messages_routed_ = 0;
  int round_ = 0;
};

}  // namespace rsb::sim
