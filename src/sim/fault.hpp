// Crash-stop fault plans for experiment ensembles.
//
// The paper's topological method is motivated by exactly the adversarial
// settings this module opens up: wait-free and t-resilient computation,
// where up to t of the n parties may crash (cf. Kozlov's treatment of weak
// symmetry breaking under wait-free crashes). A FaultPlan is the
// *declarative* description of the fault adversary attached to an
// Experiment: how many parties crash per run (the classic "t of n"
// parameter) and over which round window the crash times range. The
// concrete crash schedule of one run — WHICH parties crash, and WHEN — is
// drawn by draw() as a pure function of (plan, num_parties, run seed), so
//
//  * every run of a seed sweep gets its own schedule (the adversary is
//    resampled per run, like PortPolicy::kRandomPerRun resamples wirings),
//  * the schedule never depends on which engine worker executes the run:
//    the draw is keyed on the run's seed itself rather than on a shared
//    stream cursor, so parallel workers need no skip-ahead at all to stay
//    draw-for-draw identical with a serial sweep (DESIGN.md, "Fault model
//    & schedulers").
//
// Crash-stop semantics (both engine backends): a party with crash round r
// behaves correctly through round r−1, then halts at the start of round r —
// from round r on it transmits nothing, observes nothing, and never
// decides. Decisions made before r stand (decisions are irrevocable).
// Success accounting over crashed runs is survivor-based; see
// SymmetricTask::admits_surviving and the t-resilient task variants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rsb::sim {

struct FaultPlan {
  /// Parties crashed per run (the t of "t-resilient"). 0 = fault-free:
  /// draw() then leaves the schedule empty and every fault-aware code path
  /// reduces to the plain one (pinned byte-for-byte by the tests).
  int crashes = 0;

  /// Crash rounds are drawn uniformly from [1, crash_window]. A crash at
  /// round 1 is a party that never acts at all.
  int crash_window = 8;

  /// Root of the per-run fault streams: run schedules are drawn from
  /// derive_seed(fault_seed, run_seed). Distinct from the port seed so the
  /// fault adversary and the port adversary stay independent.
  std::uint64_t fault_seed = 0xfa017ULL;

  /// The fault-free plan (the default).
  static FaultPlan none() { return FaultPlan{}; }

  /// A t-of-n crash-stop plan over the given round window.
  static FaultPlan crash_stop(int crashes, int crash_window = 8,
                              std::uint64_t fault_seed = 0xfa017ULL);

  bool any() const noexcept { return crashes > 0; }

  /// Throws InvalidArgument unless 0 <= crashes < num_parties (at least
  /// one survivor) and crash_window >= 1.
  void validate(int num_parties) const;

  /// Draws the run's crash schedule into `crash_round`: crash_round[i] is
  /// the crash round of party i, or -1 if party i never crashes. Exactly
  /// `crashes` parties crash, chosen uniformly without replacement; each
  /// crash round is uniform on [1, crash_window]. Pure function of
  /// (*this, num_parties, run_seed); the output vector is reused scratch
  /// (resized, fully overwritten). With crashes == 0 the vector is
  /// cleared, the canonical "no faults" encoding.
  void draw(int num_parties, std::uint64_t run_seed,
            std::vector<int>& crash_round) const;

  /// e.g. "crash-stop(2@8)"; "none" for the fault-free plan.
  std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace rsb::sim
