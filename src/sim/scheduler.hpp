// Pluggable message schedulers for sim::Network.
//
// The baseline simulator is fully synchronous: everything transmitted in
// round r is observed at the end of round r. Real adversaries control the
// schedule too, not just the wiring — and the symmetry-breaking literature
// (and the t-resilient setting the fault layer opens) is about protocols
// that survive exactly that. A SchedulerSpec declares which delivery
// adversary a run faces:
//
//  * kSynchronous — the lockstep baseline; delivery round == send round.
//    Bit-for-bit identical to the pre-scheduler simulator (pinned by the
//    fault/scheduler tests).
//  * kRandomDelay — seeded random interleaving: each message is held for
//    an independent uniform delay in [0, max_delay] rounds, drawn from a
//    per-run stream (derive_seed(sched_seed, run_seed)) in the network's
//    deterministic message order. The draw is a pure function of the run,
//    never of the engine worker executing it.
//  * kAdversarialStarve — a deterministic delayer that maximally starves
//    the tagged parties: every message sent by OR addressed to a starved
//    party (and every blackboard post by one) is held for the full
//    max_delay; all other traffic is delivered immediately.
//
// A Scheduler is the per-run instance the Network consults: it maps each
// transmitted message to its delivery round. Messages are delivered at the
// end of their delivery round, merged with that round's direct traffic and
// canonically sorted, so the receiving agent cannot distinguish late
// messages from fresh ones except by content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rsb::sim {

enum class SchedulerKind {
  kSynchronous,
  kRandomDelay,
  kAdversarialStarve,
};

std::string to_string(SchedulerKind kind);

struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kSynchronous;

  /// Maximum extra rounds a message may be held. kSynchronous ignores it;
  /// kRandomDelay draws uniformly from [0, max_delay]; kAdversarialStarve
  /// holds starved traffic exactly max_delay rounds.
  int max_delay = 0;

  /// Root of the per-run delay streams (kRandomDelay): a run's draws come
  /// from derive_seed(sched_seed, run_seed).
  std::uint64_t sched_seed = 0x5ced01eULL;

  /// Parties whose traffic is starved (kAdversarialStarve), by index.
  std::vector<int> starved;

  /// The lockstep baseline (the default).
  static SchedulerSpec synchronous() { return SchedulerSpec{}; }

  /// Seeded random interleaving with per-message delays in [0, max_delay].
  static SchedulerSpec random_delay(int max_delay,
                                    std::uint64_t sched_seed = 0x5ced01eULL);

  /// The adversarial delayer: all traffic touching `starved` is held for
  /// `max_delay` rounds.
  static SchedulerSpec adversarial_starve(std::vector<int> starved,
                                          int max_delay);

  /// True iff the spec cannot reorder anything (the synchronous kind, or a
  /// delayer with max_delay == 0 and hence no effect).
  bool is_synchronous() const noexcept {
    return kind == SchedulerKind::kSynchronous || max_delay == 0;
  }

  /// Throws InvalidArgument on max_delay < 0 or starved indices outside
  /// [0, num_parties).
  void validate(int num_parties) const;

  /// e.g. "synchronous", "random-delay(3)", "starve{0,2}(4)".
  std::string to_string() const;

  friend bool operator==(const SchedulerSpec&, const SchedulerSpec&) = default;
};

/// The per-run scheduler instance. Construction binds the spec to the
/// run's seed; delivery_round() is then consulted once per transmitted
/// message, in the Network's deterministic iteration order (senders by
/// index, each outbox in transmission order), which fixes the kRandomDelay
/// stream consumption per run.
class Scheduler {
 public:
  Scheduler(const SchedulerSpec& spec, int num_parties,
            std::uint64_t run_seed);

  /// The round at the end of which a message transmitted in `round` is
  /// observed. `receiver` is -1 for blackboard posts (addressed to the
  /// board, i.e. everyone). Always >= round.
  int delivery_round(int round, int sender, int receiver);

 private:
  SchedulerKind kind_;
  int max_delay_;
  std::vector<bool> starved_;  // by party index
  Xoshiro256StarStar rng_;
};

}  // namespace rsb::sim
