// Arena-interned message payloads for the zero-copy simulation core.
//
// Every message a sim::Network run materializes — blackboard posts, port
// sends, held (delayed) traffic — used to be its own std::string, so a
// round of n broadcasting parties heap-allocated O(n²) strings and the
// held-message queues copied them again. A PayloadArena replaces all of
// that with one per-run pool: payload bytes live in bump-allocated blocks
// and are deduplicated on intern, so a message is a 4-byte PayloadId
// everywhere in the simulator (Outbox, PortMessage, the held queues, the
// flat per-round delivery buffers) and broadcast traffic — Outbox::send_all
// or a blackboard post fanned out to n−1 receivers — shares one interned
// copy of the bytes.
//
// Identity and order: equal byte strings always receive the same id
// (intern deduplicates), so id equality is payload equality. Ids
// themselves are insertion-order handles; canonical delivery order is
// lexicographic over the *bytes*, which less() provides — the simulator's
// sorted boards and port queues are byte-identical to the pre-arena
// std::string sort.
//
// Lifetime: an arena is single-threaded per-run state (parallel batch
// drivers give every worker its own via RunContext). Interned bytes are
// stable — blocks never move — so a std::string_view from view() stays
// valid until the next reset(). reset() keeps every block and the intern
// index allocated, so once a run has paid for its peak message volume,
// subsequent runs of a sweep allocate nothing.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace rsb::sim {

/// Identifier of an interned payload; equality of ids is equality of the
/// payload bytes *within one arena*. Ids must never cross arenas.
using PayloadId = std::uint32_t;

class PayloadArena {
 public:
  PayloadArena();

  /// Forgets every interned payload while keeping the block storage and
  /// the intern index allocated. Views obtained before the reset dangle.
  void reset();

  /// Interns `bytes`, returning the id of the (unique) stored copy.
  PayloadId intern(std::string_view bytes);

  /// The interned bytes; valid until the next reset().
  std::string_view view(PayloadId id) const noexcept {
    const Entry& e = entries_[id];
    return {e.data, e.size};
  }

  /// Lexicographic byte order — the simulator's canonical payload order.
  bool less(PayloadId a, PayloadId b) const noexcept {
    return a != b && view(a) < view(b);
  }

  /// Number of distinct interned payloads.
  std::size_t size() const noexcept { return entries_.size(); }

  /// Total bytes of distinct payload content currently interned.
  std::size_t bytes_interned() const noexcept { return bytes_interned_; }

 private:
  struct Entry {
    const char* data = nullptr;
    std::uint32_t size = 0;
  };

  /// Copies `bytes` into bump storage and returns the stable location.
  const char* allocate(std::string_view bytes);
  void grow_slots();

  static constexpr std::size_t kBlockBytes = 1 << 16;

  // Bump blocks: each inner buffer is reserved once and never reallocated
  // (an oversized payload gets a dedicated block), so entry pointers stay
  // stable while the outer vector grows.
  std::vector<std::vector<char>> blocks_;
  std::size_t active_block_ = 0;

  // Intern index: flat open-addressed table of ids (linear probing,
  // power-of-two size) over entries_, hashes cached per entry — the same
  // shape as the KnowledgeStore index, for the same reason: reset() is one
  // fill, no per-bucket deallocation.
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> hashes_;
  std::vector<PayloadId> slots_;
  std::size_t peak_entries_ = 0;
  std::size_t bytes_interned_ = 0;
};

}  // namespace rsb::sim
