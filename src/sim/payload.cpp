#include "sim/payload.hpp"

#include <algorithm>
#include <cstring>

#include "util/hash.hpp"

namespace rsb::sim {

namespace {

constexpr PayloadId kEmptySlot = static_cast<PayloadId>(-1);
constexpr std::size_t kInitialSlots = 64;  // power of two

/// Smallest power-of-two table holding `entries` at load <= 1/2.
std::size_t table_size_for(std::size_t entries) {
  std::size_t wanted = kInitialSlots;
  while (wanted < (entries + 1) * 2) wanted *= 2;
  return wanted;
}

std::uint64_t payload_hash(std::string_view bytes) noexcept {
  // FNV-1a over the bytes, finalized with mix64 for avalanche; cheap and
  // deterministic across runs (no per-process seed).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace

PayloadArena::PayloadArena() { slots_.assign(kInitialSlots, kEmptySlot); }

void PayloadArena::reset() {
  peak_entries_ = std::max(peak_entries_, entries_.size());
  entries_.clear();
  hashes_.clear();
  entries_.reserve(peak_entries_);
  hashes_.reserve(peak_entries_);
  const std::size_t wanted = table_size_for(peak_entries_);
  if (slots_.size() < wanted) {
    slots_.assign(wanted, kEmptySlot);
  } else {
    std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  }
  for (std::vector<char>& block : blocks_) block.clear();  // keeps capacity
  active_block_ = 0;
  bytes_interned_ = 0;
}

const char* PayloadArena::allocate(std::string_view bytes) {
  if (bytes.empty()) return "";
  while (active_block_ < blocks_.size()) {
    std::vector<char>& block = blocks_[active_block_];
    if (block.size() + bytes.size() <= block.capacity()) break;
    ++active_block_;
  }
  if (active_block_ == blocks_.size()) {
    blocks_.emplace_back();
    blocks_.back().reserve(std::max(kBlockBytes, bytes.size()));
  }
  std::vector<char>& block = blocks_[active_block_];
  const std::size_t offset = block.size();
  block.resize(offset + bytes.size());  // within capacity: never reallocates
  std::memcpy(block.data() + offset, bytes.data(), bytes.size());
  return block.data() + offset;
}

PayloadId PayloadArena::intern(std::string_view bytes) {
  const std::uint64_t h = payload_hash(bytes);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    const PayloadId occupant = slots_[i];
    if (occupant == kEmptySlot) break;
    if (hashes_[occupant] == h && view(occupant) == bytes) return occupant;
    i = (i + 1) & mask;
  }
  Entry entry;
  entry.data = allocate(bytes);
  entry.size = static_cast<std::uint32_t>(bytes.size());
  const PayloadId id = static_cast<PayloadId>(entries_.size());
  entries_.push_back(entry);
  hashes_.push_back(h);
  slots_[i] = id;
  bytes_interned_ += bytes.size();
  if ((entries_.size() + 1) * 2 > slots_.size()) grow_slots();
  return id;
}

void PayloadArena::grow_slots() {
  std::vector<PayloadId> bigger(table_size_for(entries_.size()), kEmptySlot);
  const std::size_t mask = bigger.size() - 1;
  for (PayloadId id = 0; id < static_cast<PayloadId>(entries_.size()); ++id) {
    std::size_t i = static_cast<std::size_t>(hashes_[id]) & mask;
    while (bigger[i] != kEmptySlot) i = (i + 1) & mask;
    bigger[i] = id;
  }
  slots_ = std::move(bigger);
}

}  // namespace rsb::sim
