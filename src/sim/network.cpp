#include "sim/network.hpp"

#include <algorithm>

#include "graph/topology.hpp"
#include "util/error.hpp"

namespace rsb::sim {

PayloadId Outbox::post(std::string_view payload) {
  if (model_ != Model::kBlackboard) {
    throw InvalidArgument("Outbox::post: not a blackboard network");
  }
  const PayloadId id = net_->arena_->intern(payload);
  net_->round_posts_.push_back(Network::Post{sender_, id});
  return id;
}

PayloadId Outbox::send(int port, std::string_view payload) {
  if (model_ != Model::kMessagePassing) {
    throw InvalidArgument("Outbox::send: not a message-passing network");
  }
  if (port < 1 || port > num_ports_) {
    throw InvalidArgument("Outbox::send: port " + std::to_string(port) +
                          " outside [1," + std::to_string(num_ports_) + "]");
  }
  const PayloadId id = net_->arena_->intern(payload);
  net_->round_sends_.push_back(Network::Send{sender_, port, id});
  return id;
}

PayloadId Outbox::send_all(std::string_view payload) {
  if (model_ != Model::kMessagePassing) {
    throw InvalidArgument("Outbox::send_all: not a message-passing network");
  }
  // One interned copy shared by every port — the broadcast fast path the
  // arena exists for (pinned by the payload tests).
  const PayloadId id = net_->arena_->intern(payload);
  for (int port = 1; port <= num_ports_; ++port) {
    net_->round_sends_.push_back(Network::Send{sender_, port, id});
  }
  return id;
}

Outbox::Outbox(Network* net, int sender, Model model, int num_ports)
    : net_(net), sender_(sender), model_(model), num_ports_(num_ports) {}

std::int64_t Agent::output() const {
  if (!decided_) throw InvalidArgument("Agent::output: not decided yet");
  return output_;
}

void Agent::decide(std::int64_t value) {
  if (decided_) throw InvalidArgument("Agent::decide: already decided");
  decided_ = true;
  output_ = value;
}

Network::Network(Model model, const SourceConfiguration& config,
                 std::uint64_t seed, std::optional<PortAssignment> ports,
                 const AgentFactory& factory, const SchedulerSpec& scheduler,
                 const std::vector<int>& crash_round, PayloadArena* arena,
                 const graph::Topology* topology)
    : model_(model),
      config_(config),
      ports_(std::move(ports)),
      topology_(topology),
      crash_round_(crash_round),
      scheduler_(scheduler, config.num_parties(), seed),
      arena_(arena) {
  if (arena_ == nullptr) {
    owned_arena_ = std::make_unique<PayloadArena>();
    arena_ = owned_arena_.get();
  }
  arena_->reset();  // this run starts from an observationally fresh pool
  if (topology_ != nullptr) {
    if (model_ != Model::kMessagePassing) {
      throw InvalidArgument("Network: a topology requires message passing");
    }
    if (ports_.has_value()) {
      throw InvalidArgument(
          "Network: topology and port assignment are exclusive (the "
          "topology's canonical numbering IS the wiring)");
    }
    if (topology_->num_parties() != config_.num_parties()) {
      throw InvalidArgument("Network: topology/config party mismatch");
    }
  } else if (model_ == Model::kMessagePassing) {
    if (!ports_.has_value()) {
      throw InvalidArgument("Network: message passing requires ports");
    }
    if (ports_->num_parties() != config_.num_parties()) {
      throw InvalidArgument("Network: ports/config party mismatch");
    }
  } else if (ports_.has_value()) {
    throw InvalidArgument("Network: blackboard model takes no ports");
  }
  if (!crash_round_.empty() &&
      crash_round_.size() != static_cast<std::size_t>(config_.num_parties())) {
    throw InvalidArgument("Network: crash schedule/config party mismatch");
  }
  source_words_.reserve(static_cast<std::size_t>(config_.num_sources()));
  for (int source = 0; source < config_.num_sources(); ++source) {
    source_words_.emplace_back(
        derive_seed(seed, static_cast<std::uint64_t>(source)));
  }
  Agent::Init init;
  init.num_parties = config_.num_parties();
  init.model = model_;
  agents_.reserve(static_cast<std::size_t>(config_.num_parties()));
  decision_round_.assign(static_cast<std::size_t>(config_.num_parties()), -1);
  for (int party = 0; party < config_.num_parties(); ++party) {
    if (model_ == Model::kMessagePassing) {
      init.num_ports = topology_ != nullptr ? topology_->degree(party)
                                            : config_.num_parties() - 1;
      init.max_degree = topology_ != nullptr ? topology_->max_degree()
                                             : config_.num_parties() - 1;
    }
    agents_.push_back(factory(party));
    if (!agents_.back()) throw InvalidArgument("Network: factory returned null");
    agents_.back()->begin(init);
  }
}

bool Network::alive_in_round(int party, int round) const noexcept {
  if (crash_round_.empty()) return true;
  const int crash = crash_round_[static_cast<std::size_t>(party)];
  return crash < 0 || round < crash;
}

/// Routes the round's blackboard traffic: scheduler triage of the fresh
/// posts, merge-in of held posts falling due, one canonical sort by
/// payload bytes, then a per-receiver board view (everyone's due posts
/// except the receiver's own) delivered as a span.
void Network::deliver_blackboard() {
  const int n = config_.num_parties();
  due_posts_.clear();
  for (const Post& post : round_posts_) {
    const int due = scheduler_.delivery_round(round_, post.sender, -1);
    if (due <= round_) {
      due_posts_.push_back(RoutedPost{post.sender, post.payload});
    } else {
      held_posts_.push_back(HeldPost{due, post.sender, post.payload});
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_posts_.size(); ++i) {
    const HeldPost held = held_posts_[i];
    if (held.due != round_) {
      held_posts_[kept] = held;
      ++kept;
      continue;
    }
    due_posts_.push_back(RoutedPost{held.sender, held.payload});
  }
  held_posts_.resize(kept);
  std::sort(due_posts_.begin(), due_posts_.end(),
            [this](const RoutedPost& a, const RoutedPost& b) {
              return arena_->less(a.payload, b.payload);
            });
  for (int receiver = 0; receiver < n; ++receiver) {
    if (!alive_in_round(receiver, round_)) continue;  // dropped at delivery
    board_scratch_.clear();
    for (const RoutedPost& post : due_posts_) {
      if (post.sender != receiver) board_scratch_.push_back(post.payload);
    }
    Delivery delivery;
    delivery.board = board_scratch_;
    delivery.arena = arena_;
    Agent& agent = *agents_[static_cast<std::size_t>(receiver)];
    const bool was_decided = agent.decided();
    agent.receive_phase(round_, delivery);
    if (!was_decided && agent.decided()) {
      decision_round_[static_cast<std::size_t>(receiver)] = round_;
    }
  }
}

/// Routes the round's port traffic to (receiver, receiving port) pairs,
/// merges in held messages falling due, sorts once by (receiver, port,
/// payload bytes) and delivers each receiver its contiguous span.
void Network::deliver_message_passing() {
  const int n = config_.num_parties();
  due_sends_.clear();
  for (const Send& send : round_sends_) {
    const int receiver = topology_ != nullptr
                             ? topology_->neighbor(send.sender, send.port)
                             : ports_->neighbor(send.sender, send.port);
    const int receiving_port = topology_ != nullptr
                                   ? topology_->port_of(receiver, send.sender)
                                   : ports_->port_to(receiver, send.sender);
    const int due = scheduler_.delivery_round(round_, send.sender, receiver);
    if (due <= round_) {
      due_sends_.push_back(
          RoutedSend{receiver, PortMessage{receiving_port, send.payload}});
    } else {
      held_sends_.push_back(
          HeldSend{due, receiver, receiving_port, send.payload});
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_sends_.size(); ++i) {
    const HeldSend held = held_sends_[i];
    if (held.due != round_) {
      held_sends_[kept] = held;
      ++kept;
      continue;
    }
    due_sends_.push_back(
        RoutedSend{held.receiver, PortMessage{held.port, held.payload}});
  }
  held_sends_.resize(kept);
  messages_routed_ += static_cast<std::uint64_t>(due_sends_.size());
  std::sort(due_sends_.begin(), due_sends_.end(),
            [this](const RoutedSend& a, const RoutedSend& b) {
              if (a.receiver != b.receiver) return a.receiver < b.receiver;
              if (a.message.port != b.message.port) {
                return a.message.port < b.message.port;
              }
              return arena_->less(a.message.payload, b.message.payload);
            });
  by_port_flat_.clear();
  by_port_flat_.reserve(due_sends_.size());
  for (const RoutedSend& routed : due_sends_) {
    by_port_flat_.push_back(routed.message);
  }
  std::size_t cursor = 0;
  for (int receiver = 0; receiver < n; ++receiver) {
    const std::size_t begin = cursor;
    while (cursor < due_sends_.size() && due_sends_[cursor].receiver == receiver) {
      ++cursor;
    }
    if (!alive_in_round(receiver, round_)) continue;  // dropped at delivery
    Delivery delivery;
    delivery.by_port = std::span<const PortMessage>(
        by_port_flat_.data() + begin, cursor - begin);
    delivery.arena = arena_;
    Agent& agent = *agents_[static_cast<std::size_t>(receiver)];
    const bool was_decided = agent.decided();
    agent.receive_phase(round_, delivery);
    if (!was_decided && agent.decided()) {
      decision_round_[static_cast<std::size_t>(receiver)] = round_;
    }
  }
}

bool Network::step() {
  const int n = config_.num_parties();
  ++round_;

  // Draw this round's word per source; all same-source parties share it.
  // Drawn regardless of crashes, so survivor randomness never depends on
  // the fault pattern.
  word_of_source_.resize(static_cast<std::size_t>(config_.num_sources()));
  for (int source = 0; source < config_.num_sources(); ++source) {
    word_of_source_[static_cast<std::size_t>(source)] =
        source_words_[static_cast<std::size_t>(source)].next();
  }

  // Send phase: agents append into the network's flat transmission
  // buffers (sender order, then transmission order — the scheduler's
  // stream-consumption order). Crashed parties transmit nothing.
  round_posts_.clear();
  round_sends_.clear();
  for (int party = 0; party < n; ++party) {
    if (!alive_in_round(party, round_)) continue;
    Outbox out(this, party, model_,
               topology_ != nullptr ? topology_->degree(party) : n - 1);
    agents_[static_cast<std::size_t>(party)]->send_phase(
        round_,
        word_of_source_[static_cast<std::size_t>(config_.source_of(party))],
        out);
  }

  // Delivery + receive phase: messages addressed to crashed parties are
  // dropped at delivery time, inside the per-model router.
  if (model_ == Model::kBlackboard) {
    deliver_blackboard();
  } else {
    deliver_message_passing();
  }

  bool all_decided = true;
  for (int party = 0; party < n; ++party) {
    if (!alive_in_round(party, round_)) continue;  // crashed: never blocks
    all_decided =
        all_decided && agents_[static_cast<std::size_t>(party)]->decided();
  }
  return all_decided;
}

Network::Outcome Network::run(int max_rounds) {
  Outcome outcome;
  bool done = false;
  for (int r = 0; r < max_rounds && !done; ++r) done = step();
  outcome.all_decided = done;
  outcome.rounds = round_;
  outcome.outputs.assign(static_cast<std::size_t>(config_.num_parties()), 0);
  outcome.decision_round = decision_round_;
  for (int party = 0; party < config_.num_parties(); ++party) {
    const Agent& agent = *agents_[static_cast<std::size_t>(party)];
    outcome.outputs[static_cast<std::size_t>(party)] =
        agent.decided() ? agent.output() : 0;
  }
  return outcome;
}

const Agent& Network::agent(int party) const {
  if (party < 0 || party >= config_.num_parties()) {
    throw InvalidArgument("Network::agent: bad party index");
  }
  return *agents_[static_cast<std::size_t>(party)];
}

}  // namespace rsb::sim
