#include "sim/network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsb::sim {

void Outbox::post(std::string payload) {
  if (model_ != Model::kBlackboard) {
    throw InvalidArgument("Outbox::post: not a blackboard network");
  }
  posts_.push_back(std::move(payload));
}

void Outbox::send(int port, std::string payload) {
  if (model_ != Model::kMessagePassing) {
    throw InvalidArgument("Outbox::send: not a message-passing network");
  }
  if (port < 1 || port > num_ports_) {
    throw InvalidArgument("Outbox::send: port " + std::to_string(port) +
                          " outside [1," + std::to_string(num_ports_) + "]");
  }
  sends_.emplace_back(port, std::move(payload));
}

void Outbox::send_all(const std::string& payload) {
  for (int port = 1; port <= num_ports_; ++port) send(port, payload);
}

Outbox::Outbox(Model model, int num_ports)
    : model_(model), num_ports_(num_ports) {}

std::int64_t Agent::output() const {
  if (!decided_) throw InvalidArgument("Agent::output: not decided yet");
  return output_;
}

void Agent::decide(std::int64_t value) {
  if (decided_) throw InvalidArgument("Agent::decide: already decided");
  decided_ = true;
  output_ = value;
}

Network::Network(Model model, const SourceConfiguration& config,
                 std::uint64_t seed, std::optional<PortAssignment> ports,
                 const AgentFactory& factory, const SchedulerSpec& scheduler,
                 const std::vector<int>& crash_round)
    : model_(model),
      config_(config),
      ports_(std::move(ports)),
      crash_round_(crash_round),
      scheduler_(scheduler, config.num_parties(), seed) {
  if (model_ == Model::kMessagePassing) {
    if (!ports_.has_value()) {
      throw InvalidArgument("Network: message passing requires ports");
    }
    if (ports_->num_parties() != config_.num_parties()) {
      throw InvalidArgument("Network: ports/config party mismatch");
    }
  } else if (ports_.has_value()) {
    throw InvalidArgument("Network: blackboard model takes no ports");
  }
  if (!crash_round_.empty() &&
      crash_round_.size() != static_cast<std::size_t>(config_.num_parties())) {
    throw InvalidArgument("Network: crash schedule/config party mismatch");
  }
  source_words_.reserve(static_cast<std::size_t>(config_.num_sources()));
  for (int source = 0; source < config_.num_sources(); ++source) {
    source_words_.emplace_back(
        derive_seed(seed, static_cast<std::uint64_t>(source)));
  }
  Agent::Init init;
  init.num_parties = config_.num_parties();
  init.model = model_;
  agents_.reserve(static_cast<std::size_t>(config_.num_parties()));
  decision_round_.assign(static_cast<std::size_t>(config_.num_parties()), -1);
  for (int party = 0; party < config_.num_parties(); ++party) {
    agents_.push_back(factory(party));
    if (!agents_.back()) throw InvalidArgument("Network: factory returned null");
    agents_.back()->begin(init);
  }
}

bool Network::alive_in_round(int party, int round) const noexcept {
  if (crash_round_.empty()) return true;
  const int crash = crash_round_[static_cast<std::size_t>(party)];
  return crash < 0 || round < crash;
}

bool Network::step() {
  const int n = config_.num_parties();
  ++round_;

  // Draw this round's word per source; all same-source parties share it.
  // Drawn regardless of crashes, so survivor randomness never depends on
  // the fault pattern.
  std::vector<std::uint64_t> word_of_source(
      static_cast<std::size_t>(config_.num_sources()));
  for (int source = 0; source < config_.num_sources(); ++source) {
    word_of_source[static_cast<std::size_t>(source)] =
        source_words_[static_cast<std::size_t>(source)].next();
  }

  // Send phase: crashed parties transmit nothing.
  std::vector<Outbox> outboxes;
  outboxes.reserve(static_cast<std::size_t>(n));
  for (int party = 0; party < n; ++party) {
    Outbox out(model_, n - 1);
    if (alive_in_round(party, round_)) {
      agents_[static_cast<std::size_t>(party)]->send_phase(
          round_, word_of_source[static_cast<std::size_t>(
                      config_.source_of(party))],
          out);
    }
    outboxes.push_back(std::move(out));
  }

  // Delivery phase: route this round's traffic through the scheduler —
  // immediate messages join the round's delivery directly, delayed ones go
  // to the held queues — then merge in everything previously held that
  // falls due this round, and canonically sort.
  std::vector<Delivery> deliveries(static_cast<std::size_t>(n));
  if (model_ == Model::kBlackboard) {
    for (int sender = 0; sender < n; ++sender) {
      for (auto& payload : outboxes[static_cast<std::size_t>(sender)].posts_) {
        const int due = scheduler_.delivery_round(round_, sender, -1);
        if (due <= round_) {
          for (int receiver = 0; receiver < n; ++receiver) {
            if (receiver == sender) continue;  // the board shows others' posts
            deliveries[static_cast<std::size_t>(receiver)].board.push_back(
                payload);
          }
        } else {
          held_posts_.push_back(HeldPost{due, sender, std::move(payload)});
        }
      }
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < held_posts_.size(); ++i) {
      HeldPost& held = held_posts_[i];
      if (held.due != round_) {
        if (kept != i) held_posts_[kept] = std::move(held);
        ++kept;
        continue;
      }
      for (int receiver = 0; receiver < n; ++receiver) {
        if (receiver == held.sender) continue;
        deliveries[static_cast<std::size_t>(receiver)].board.push_back(
            held.payload);
      }
    }
    held_posts_.resize(kept);
    for (auto& d : deliveries) std::sort(d.board.begin(), d.board.end());
  } else {
    for (int sender = 0; sender < n; ++sender) {
      for (auto& [port, payload] :
           outboxes[static_cast<std::size_t>(sender)].sends_) {
        const int receiver = ports_->neighbor(sender, port);
        const int receiving_port = ports_->port_to(receiver, sender);
        const int due = scheduler_.delivery_round(round_, sender, receiver);
        if (due <= round_) {
          deliveries[static_cast<std::size_t>(receiver)].by_port.push_back(
              PortMessage{receiving_port, std::move(payload)});
        } else {
          held_sends_.push_back(
              HeldSend{due, receiver, receiving_port, std::move(payload)});
        }
      }
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < held_sends_.size(); ++i) {
      HeldSend& held = held_sends_[i];
      if (held.due != round_) {
        if (kept != i) held_sends_[kept] = std::move(held);
        ++kept;
        continue;
      }
      deliveries[static_cast<std::size_t>(held.receiver)].by_port.push_back(
          PortMessage{held.port, std::move(held.payload)});
    }
    held_sends_.resize(kept);
    for (auto& d : deliveries) std::sort(d.by_port.begin(), d.by_port.end());
  }

  // Receive phase: messages addressed to crashed parties are dropped here.
  bool all_decided = true;
  for (int party = 0; party < n; ++party) {
    Agent& agent = *agents_[static_cast<std::size_t>(party)];
    if (!alive_in_round(party, round_)) continue;  // crashed: never blocks
    const bool was_decided = agent.decided();
    agent.receive_phase(round_, deliveries[static_cast<std::size_t>(party)]);
    if (!was_decided && agent.decided()) {
      decision_round_[static_cast<std::size_t>(party)] = round_;
    }
    all_decided = all_decided && agent.decided();
  }
  return all_decided;
}

Network::Outcome Network::run(int max_rounds) {
  Outcome outcome;
  bool done = false;
  for (int r = 0; r < max_rounds && !done; ++r) done = step();
  outcome.all_decided = done;
  outcome.rounds = round_;
  outcome.outputs.assign(static_cast<std::size_t>(config_.num_parties()), 0);
  outcome.decision_round = decision_round_;
  for (int party = 0; party < config_.num_parties(); ++party) {
    const Agent& agent = *agents_[static_cast<std::size_t>(party)];
    outcome.outputs[static_cast<std::size_t>(party)] =
        agent.decided() ? agent.output() : 0;
  }
  return outcome;
}

const Agent& Network::agent(int party) const {
  if (party < 0 || party >= config_.num_parties()) {
    throw InvalidArgument("Network::agent: bad party index");
  }
  return *agents_[static_cast<std::size_t>(party)];
}

}  // namespace rsb::sim
