#include "sim/fault.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsb::sim {

FaultPlan FaultPlan::crash_stop(int crashes, int crash_window,
                                std::uint64_t fault_seed) {
  FaultPlan plan;
  plan.crashes = crashes;
  plan.crash_window = crash_window;
  plan.fault_seed = fault_seed;
  return plan;
}

void FaultPlan::validate(int num_parties) const {
  if (crashes < 0) {
    throw InvalidArgument("FaultPlan: crashes must be >= 0");
  }
  if (crashes >= num_parties && crashes > 0) {
    throw InvalidArgument(
        "FaultPlan: crashes must leave at least one survivor (crashes=" +
        std::to_string(crashes) + ", parties=" + std::to_string(num_parties) +
        ")");
  }
  if (crash_window < 1) {
    throw InvalidArgument("FaultPlan: crash_window must be >= 1");
  }
}

void FaultPlan::draw(int num_parties, std::uint64_t run_seed,
                     std::vector<int>& crash_round) const {
  crash_round.clear();
  if (crashes <= 0) return;
  crash_round.assign(static_cast<std::size_t>(num_parties), -1);
  // Uniform sampling without replacement by rejection (crashes < n, so
  // each pick terminates; allocation-free — the output vector doubles as
  // the membership marker). Keyed on the run's own seed, so the schedule
  // is identical whichever worker draws it.
  Xoshiro256StarStar rng(derive_seed(fault_seed, run_seed));
  for (int k = 0; k < crashes; ++k) {
    std::size_t party;
    do {
      party = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(num_parties)));
    } while (crash_round[party] != -1);
    crash_round[party] =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(crash_window)));
  }
}

std::string FaultPlan::to_string() const {
  if (!any()) return "none";
  return "crash-stop(" + std::to_string(crashes) + "@" +
         std::to_string(crash_window) + ")";
}

}  // namespace rsb::sim
