# Empty compiler generated dependencies file for example_correlated_keys.
# This may be replaced when dependencies are built.
