file(REMOVE_RECURSE
  "CMakeFiles/example_correlated_keys.dir/examples/correlated_keys.cpp.o"
  "CMakeFiles/example_correlated_keys.dir/examples/correlated_keys.cpp.o.d"
  "correlated_keys"
  "correlated_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_correlated_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
