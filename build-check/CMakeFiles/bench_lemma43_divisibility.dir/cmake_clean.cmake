file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma43_divisibility.dir/bench/bench_lemma43_divisibility.cpp.o"
  "CMakeFiles/bench_lemma43_divisibility.dir/bench/bench_lemma43_divisibility.cpp.o.d"
  "bench_lemma43_divisibility"
  "bench_lemma43_divisibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma43_divisibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
