# Empty compiler generated dependencies file for bench_lemma43_divisibility.
# This may be replaced when dependencies are built.
