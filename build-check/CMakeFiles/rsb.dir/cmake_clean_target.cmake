file(REMOVE_RECURSE
  "librsb.a"
)
