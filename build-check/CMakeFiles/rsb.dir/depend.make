# Empty dependencies file for rsb.
# This may be replaced when dependencies are built.
