
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/agents.cpp" "CMakeFiles/rsb.dir/src/algo/agents.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/algo/agents.cpp.o.d"
  "/root/repo/src/algo/euclid.cpp" "CMakeFiles/rsb.dir/src/algo/euclid.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/algo/euclid.cpp.o.d"
  "/root/repo/src/algo/protocol.cpp" "CMakeFiles/rsb.dir/src/algo/protocol.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/algo/protocol.cpp.o.d"
  "/root/repo/src/algo/reduction.cpp" "CMakeFiles/rsb.dir/src/algo/reduction.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/algo/reduction.cpp.o.d"
  "/root/repo/src/core/consistency.cpp" "CMakeFiles/rsb.dir/src/core/consistency.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/core/consistency.cpp.o.d"
  "/root/repo/src/core/deciders.cpp" "CMakeFiles/rsb.dir/src/core/deciders.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/core/deciders.cpp.o.d"
  "/root/repo/src/core/probability.cpp" "CMakeFiles/rsb.dir/src/core/probability.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/core/probability.cpp.o.d"
  "/root/repo/src/core/solvability.cpp" "CMakeFiles/rsb.dir/src/core/solvability.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/core/solvability.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "CMakeFiles/rsb.dir/src/engine/engine.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/engine/engine.cpp.o.d"
  "/root/repo/src/engine/experiment.cpp" "CMakeFiles/rsb.dir/src/engine/experiment.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/engine/experiment.cpp.o.d"
  "/root/repo/src/engine/registry.cpp" "CMakeFiles/rsb.dir/src/engine/registry.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/engine/registry.cpp.o.d"
  "/root/repo/src/engine/run_context.cpp" "CMakeFiles/rsb.dir/src/engine/run_context.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/engine/run_context.cpp.o.d"
  "/root/repo/src/knowledge/knowledge.cpp" "CMakeFiles/rsb.dir/src/knowledge/knowledge.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/knowledge/knowledge.cpp.o.d"
  "/root/repo/src/model/models.cpp" "CMakeFiles/rsb.dir/src/model/models.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/model/models.cpp.o.d"
  "/root/repo/src/model/port_assignment.cpp" "CMakeFiles/rsb.dir/src/model/port_assignment.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/model/port_assignment.cpp.o.d"
  "/root/repo/src/protocol/complexes.cpp" "CMakeFiles/rsb.dir/src/protocol/complexes.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/protocol/complexes.cpp.o.d"
  "/root/repo/src/randomness/config.cpp" "CMakeFiles/rsb.dir/src/randomness/config.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/randomness/config.cpp.o.d"
  "/root/repo/src/randomness/dyadic.cpp" "CMakeFiles/rsb.dir/src/randomness/dyadic.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/randomness/dyadic.cpp.o.d"
  "/root/repo/src/randomness/realization.cpp" "CMakeFiles/rsb.dir/src/randomness/realization.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/randomness/realization.cpp.o.d"
  "/root/repo/src/randomness/source_bank.cpp" "CMakeFiles/rsb.dir/src/randomness/source_bank.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/randomness/source_bank.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/rsb.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/tasks/name_independent.cpp" "CMakeFiles/rsb.dir/src/tasks/name_independent.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/tasks/name_independent.cpp.o.d"
  "/root/repo/src/tasks/role_constrained.cpp" "CMakeFiles/rsb.dir/src/tasks/role_constrained.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/tasks/role_constrained.cpp.o.d"
  "/root/repo/src/tasks/tasks.cpp" "CMakeFiles/rsb.dir/src/tasks/tasks.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/tasks/tasks.cpp.o.d"
  "/root/repo/src/topology/homology.cpp" "CMakeFiles/rsb.dir/src/topology/homology.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/topology/homology.cpp.o.d"
  "/root/repo/src/topology/instantiations.cpp" "CMakeFiles/rsb.dir/src/topology/instantiations.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/topology/instantiations.cpp.o.d"
  "/root/repo/src/util/bitstring.cpp" "CMakeFiles/rsb.dir/src/util/bitstring.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/util/bitstring.cpp.o.d"
  "/root/repo/src/util/numeric.cpp" "CMakeFiles/rsb.dir/src/util/numeric.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/util/numeric.cpp.o.d"
  "/root/repo/src/util/partitions.cpp" "CMakeFiles/rsb.dir/src/util/partitions.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/util/partitions.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/rsb.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/rsb.dir/src/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
