# Empty compiler generated dependencies file for example_two_leader.
# This may be replaced when dependencies are built.
