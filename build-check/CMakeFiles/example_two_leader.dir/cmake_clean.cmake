file(REMOVE_RECURSE
  "CMakeFiles/example_two_leader.dir/examples/two_leader.cpp.o"
  "CMakeFiles/example_two_leader.dir/examples/two_leader.cpp.o.d"
  "two_leader"
  "two_leader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_two_leader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
