# Empty dependencies file for bench_fig1_protocol_complex.
# This may be replaced when dependencies are built.
