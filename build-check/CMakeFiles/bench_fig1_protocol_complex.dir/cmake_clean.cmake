file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_protocol_complex.dir/bench/bench_fig1_protocol_complex.cpp.o"
  "CMakeFiles/bench_fig1_protocol_complex.dir/bench/bench_fig1_protocol_complex.cpp.o.d"
  "bench_fig1_protocol_complex"
  "bench_fig1_protocol_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_protocol_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
