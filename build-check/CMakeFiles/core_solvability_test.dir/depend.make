# Empty dependencies file for core_solvability_test.
# This may be replaced when dependencies are built.
