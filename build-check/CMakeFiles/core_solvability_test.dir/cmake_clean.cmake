file(REMOVE_RECURSE
  "CMakeFiles/core_solvability_test.dir/tests/core_solvability_test.cpp.o"
  "CMakeFiles/core_solvability_test.dir/tests/core_solvability_test.cpp.o.d"
  "core_solvability_test"
  "core_solvability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_solvability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
