# Empty dependencies file for bench_thm41_blackboard.
# This may be replaced when dependencies are built.
