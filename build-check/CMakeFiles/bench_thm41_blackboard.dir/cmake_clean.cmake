file(REMOVE_RECURSE
  "CMakeFiles/bench_thm41_blackboard.dir/bench/bench_thm41_blackboard.cpp.o"
  "CMakeFiles/bench_thm41_blackboard.dir/bench/bench_thm41_blackboard.cpp.o.d"
  "bench_thm41_blackboard"
  "bench_thm41_blackboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm41_blackboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
