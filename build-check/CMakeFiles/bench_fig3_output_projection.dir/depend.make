# Empty dependencies file for bench_fig3_output_projection.
# This may be replaced when dependencies are built.
