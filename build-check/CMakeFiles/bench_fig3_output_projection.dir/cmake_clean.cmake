file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_output_projection.dir/bench/bench_fig3_output_projection.cpp.o"
  "CMakeFiles/bench_fig3_output_projection.dir/bench/bench_fig3_output_projection.cpp.o.d"
  "bench_fig3_output_projection"
  "bench_fig3_output_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_output_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
