# Empty compiler generated dependencies file for randomness_test.
# This may be replaced when dependencies are built.
