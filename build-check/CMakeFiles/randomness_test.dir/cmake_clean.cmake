file(REMOVE_RECURSE
  "CMakeFiles/randomness_test.dir/tests/randomness_test.cpp.o"
  "CMakeFiles/randomness_test.dir/tests/randomness_test.cpp.o.d"
  "randomness_test"
  "randomness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
