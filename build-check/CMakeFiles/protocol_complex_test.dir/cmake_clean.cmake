file(REMOVE_RECURSE
  "CMakeFiles/protocol_complex_test.dir/tests/protocol_complex_test.cpp.o"
  "CMakeFiles/protocol_complex_test.dir/tests/protocol_complex_test.cpp.o.d"
  "protocol_complex_test"
  "protocol_complex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
