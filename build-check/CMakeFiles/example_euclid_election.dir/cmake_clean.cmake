file(REMOVE_RECURSE
  "CMakeFiles/example_euclid_election.dir/examples/euclid_election.cpp.o"
  "CMakeFiles/example_euclid_election.dir/examples/euclid_election.cpp.o.d"
  "euclid_election"
  "euclid_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_euclid_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
