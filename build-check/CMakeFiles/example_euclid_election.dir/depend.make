# Empty dependencies file for example_euclid_election.
# This may be replaced when dependencies are built.
