file(REMOVE_RECURSE
  "CMakeFiles/role_constrained_test.dir/tests/role_constrained_test.cpp.o"
  "CMakeFiles/role_constrained_test.dir/tests/role_constrained_test.cpp.o.d"
  "role_constrained_test"
  "role_constrained_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/role_constrained_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
