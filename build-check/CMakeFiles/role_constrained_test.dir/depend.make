# Empty dependencies file for role_constrained_test.
# This may be replaced when dependencies are built.
