# Empty compiler generated dependencies file for deciders_test.
# This may be replaced when dependencies are built.
