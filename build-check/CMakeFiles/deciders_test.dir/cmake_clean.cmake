file(REMOVE_RECURSE
  "CMakeFiles/deciders_test.dir/tests/deciders_test.cpp.o"
  "CMakeFiles/deciders_test.dir/tests/deciders_test.cpp.o.d"
  "deciders_test"
  "deciders_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deciders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
