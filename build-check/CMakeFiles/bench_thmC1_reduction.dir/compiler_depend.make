# Empty compiler generated dependencies file for bench_thmC1_reduction.
# This may be replaced when dependencies are built.
