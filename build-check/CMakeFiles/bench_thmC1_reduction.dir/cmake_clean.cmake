file(REMOVE_RECURSE
  "CMakeFiles/bench_thmC1_reduction.dir/bench/bench_thmC1_reduction.cpp.o"
  "CMakeFiles/bench_thmC1_reduction.dir/bench/bench_thmC1_reduction.cpp.o.d"
  "bench_thmC1_reduction"
  "bench_thmC1_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thmC1_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
