file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_equivalence.dir/bench/bench_fig4_equivalence.cpp.o"
  "CMakeFiles/bench_fig4_equivalence.dir/bench/bench_fig4_equivalence.cpp.o.d"
  "bench_fig4_equivalence"
  "bench_fig4_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
