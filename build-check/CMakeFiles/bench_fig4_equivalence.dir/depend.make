# Empty dependencies file for bench_fig4_equivalence.
# This may be replaced when dependencies are built.
