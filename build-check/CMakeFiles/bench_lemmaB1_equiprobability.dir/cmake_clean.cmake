file(REMOVE_RECURSE
  "CMakeFiles/bench_lemmaB1_equiprobability.dir/bench/bench_lemmaB1_equiprobability.cpp.o"
  "CMakeFiles/bench_lemmaB1_equiprobability.dir/bench/bench_lemmaB1_equiprobability.cpp.o.d"
  "bench_lemmaB1_equiprobability"
  "bench_lemmaB1_equiprobability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemmaB1_equiprobability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
