# Empty compiler generated dependencies file for bench_lemmaB1_equiprobability.
# This may be replaced when dependencies are built.
