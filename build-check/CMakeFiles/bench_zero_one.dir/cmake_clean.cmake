file(REMOVE_RECURSE
  "CMakeFiles/bench_zero_one.dir/bench/bench_zero_one.cpp.o"
  "CMakeFiles/bench_zero_one.dir/bench/bench_zero_one.cpp.o.d"
  "bench_zero_one"
  "bench_zero_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zero_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
