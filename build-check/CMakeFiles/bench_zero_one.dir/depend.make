# Empty dependencies file for bench_zero_one.
# This may be replaced when dependencies are built.
