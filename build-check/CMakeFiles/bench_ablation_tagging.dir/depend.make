# Empty dependencies file for bench_ablation_tagging.
# This may be replaced when dependencies are built.
