file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tagging.dir/bench/bench_ablation_tagging.cpp.o"
  "CMakeFiles/bench_ablation_tagging.dir/bench/bench_ablation_tagging.cpp.o.d"
  "bench_ablation_tagging"
  "bench_ablation_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
