file(REMOVE_RECURSE
  "CMakeFiles/bench_thm42_message_passing.dir/bench/bench_thm42_message_passing.cpp.o"
  "CMakeFiles/bench_thm42_message_passing.dir/bench/bench_thm42_message_passing.cpp.o.d"
  "bench_thm42_message_passing"
  "bench_thm42_message_passing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm42_message_passing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
