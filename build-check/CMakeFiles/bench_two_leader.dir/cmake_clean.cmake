file(REMOVE_RECURSE
  "CMakeFiles/bench_two_leader.dir/bench/bench_two_leader.cpp.o"
  "CMakeFiles/bench_two_leader.dir/bench/bench_two_leader.cpp.o.d"
  "bench_two_leader"
  "bench_two_leader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_leader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
