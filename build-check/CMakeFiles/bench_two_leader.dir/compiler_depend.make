# Empty compiler generated dependencies file for bench_two_leader.
# This may be replaced when dependencies are built.
