file(REMOVE_RECURSE
  "CMakeFiles/bench_deputy_leader.dir/bench/bench_deputy_leader.cpp.o"
  "CMakeFiles/bench_deputy_leader.dir/bench/bench_deputy_leader.cpp.o.d"
  "bench_deputy_leader"
  "bench_deputy_leader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deputy_leader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
