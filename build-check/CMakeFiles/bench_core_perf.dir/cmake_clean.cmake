file(REMOVE_RECURSE
  "CMakeFiles/bench_core_perf.dir/bench/bench_core_perf.cpp.o"
  "CMakeFiles/bench_core_perf.dir/bench/bench_core_perf.cpp.o.d"
  "bench_core_perf"
  "bench_core_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
