# Empty compiler generated dependencies file for bench_core_perf.
# This may be replaced when dependencies are built.
