# Empty compiler generated dependencies file for bench_fig2_realization_complex.
# This may be replaced when dependencies are built.
