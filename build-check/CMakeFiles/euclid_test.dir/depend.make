# Empty dependencies file for euclid_test.
# This may be replaced when dependencies are built.
