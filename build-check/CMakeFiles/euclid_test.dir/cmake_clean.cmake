file(REMOVE_RECURSE
  "CMakeFiles/euclid_test.dir/tests/euclid_test.cpp.o"
  "CMakeFiles/euclid_test.dir/tests/euclid_test.cpp.o.d"
  "euclid_test"
  "euclid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euclid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
