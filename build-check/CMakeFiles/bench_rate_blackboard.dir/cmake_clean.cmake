file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_blackboard.dir/bench/bench_rate_blackboard.cpp.o"
  "CMakeFiles/bench_rate_blackboard.dir/bench/bench_rate_blackboard.cpp.o.d"
  "bench_rate_blackboard"
  "bench_rate_blackboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_blackboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
