# Empty dependencies file for bench_rate_blackboard.
# This may be replaced when dependencies are built.
