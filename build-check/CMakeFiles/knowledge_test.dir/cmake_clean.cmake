file(REMOVE_RECURSE
  "CMakeFiles/knowledge_test.dir/tests/knowledge_test.cpp.o"
  "CMakeFiles/knowledge_test.dir/tests/knowledge_test.cpp.o.d"
  "knowledge_test"
  "knowledge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
