file(REMOVE_RECURSE
  "CMakeFiles/example_port_adversary.dir/examples/port_adversary.cpp.o"
  "CMakeFiles/example_port_adversary.dir/examples/port_adversary.cpp.o.d"
  "port_adversary"
  "port_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_port_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
