# Empty compiler generated dependencies file for example_port_adversary.
# This may be replaced when dependencies are built.
