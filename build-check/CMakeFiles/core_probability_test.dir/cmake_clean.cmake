file(REMOVE_RECURSE
  "CMakeFiles/core_probability_test.dir/tests/core_probability_test.cpp.o"
  "CMakeFiles/core_probability_test.dir/tests/core_probability_test.cpp.o.d"
  "core_probability_test"
  "core_probability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_probability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
