# Empty compiler generated dependencies file for core_probability_test.
# This may be replaced when dependencies are built.
