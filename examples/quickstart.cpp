// Quickstart: the topological framework in ~100 lines.
//
// 1. Wire 4 anonymous parties to randomness sources (two share one source).
// 2. Enumerate realizations R(t), project through the consistency
//    projection π̃, and ask which facets solve leader election.
// 3. Compute the exact probability p(t) = Pr[S(t)|α] and compare with the
//    analytic Theorem 4.1 verdict.
// 4. Run an actual election protocol through the experiment engine — one
//    run for the trace, a declarative 100-seed batch, and a ParamGrid
//    sweep across wirings rendered as a ResultTable.
//
// Build & run:  ./build/quickstart
#include <cstdio>
#include <string>

#include "core/deciders.hpp"
#include "core/probability.hpp"
#include "core/solvability.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/report.hpp"
#include "util/partitions.hpp"

using namespace rsb;

namespace {

std::string partition_to_string(const std::vector<int>& partition) {
  std::string out = "[";
  const int blocks = block_count(partition);
  for (int b = 0; b < blocks; ++b) {
    if (b != 0) out += " | ";
    bool first = true;
    for (std::size_t party = 0; party < partition.size(); ++party) {
      if (partition[party] == b) {
        if (!first) out += ",";
        out += std::to_string(party);
        first = false;
      }
    }
  }
  return out + "]";
}

}  // namespace

int main() {
  // Parties 0,1 share source R1; parties 2 and 3 have private sources.
  const SourceConfiguration config = SourceConfiguration::from_loads({2, 1, 1});
  const SymmetricTask le = SymmetricTask::leader_election(4);
  std::printf("configuration: %s\n", config.to_string().c_str());

  // --- facet-level view: which realizations at t = 1 solve LE? ---------
  std::printf("\nrealizations at t = 1, consistency classes, verdicts:\n");
  KnowledgeStore store;
  for_each_positive_realization(config, 1, [&](const Realization& rho) {
    const auto partition = consistency_partition_blackboard(store, rho);
    const bool solves = solves_by_partition(partition, le);
    std::printf("  %-18s classes=%-14s %s\n", rho.to_string().c_str(),
                partition_to_string(partition).c_str(),
                solves ? "solves LE" : "does not solve");
  });

  // --- probability view: exact p(t) ------------------------------------
  std::printf("\nexact p(t) = Pr[S(t) | α]:\n");
  for (int t = 1; t <= 5; ++t) {
    const Dyadic p = exact_solve_probability_blackboard(config, le, t);
    std::printf("  t=%d  p=%-10s = %.4f\n", t, p.to_string().c_str(),
                p.to_double());
  }

  // --- analytic view: Theorem 4.1 --------------------------------------
  std::printf("\nTheorem 4.1 predicate (∃ n_i = 1): %s\n",
              eventually_solvable_blackboard(config, le)
                  ? "eventually solvable"
                  : "not solvable");

  // --- protocol view: run the election through the engine ---------------
  // One Experiment type describes the whole ensemble; protocols attach by
  // registry name (see ProtocolRegistry::global().describe() for the list).
  Engine engine;
  auto spec = Experiment::blackboard(config)
                  .with_protocol("blackboard-unique-string-LE")
                  .with_task(le)
                  .with_rounds(64);
  const auto outcome = engine.run(spec, /*seed=*/2024);
  if (outcome.terminated) {
    std::printf("\nprotocol '%s' elected a leader in %d rounds; outputs:",
                spec.protocol->name().c_str(), outcome.rounds);
    for (std::int64_t v : outcome.outputs) {
      std::printf(" %lld", static_cast<long long>(v));
    }
    std::printf("\n");
  } else {
    std::printf("\nprotocol did not terminate within the round budget\n");
  }

  // --- batch view: the same spec swept across 100 seeds -----------------
  const RunStats stats = engine.run_batch(spec.with_seeds(1, 100));
  std::printf("\n100-seed batch (%s):\n  %s\n", spec.to_string().c_str(),
              stats.summary().c_str());

  // --- parallel view: same sweep on a worker pool, same answer -----------
  // threads = 0 means one worker per hardware thread; collectors shard
  // per worker and merge in worker-index order, so results are
  // byte-identical to the serial sweep at any thread count.
  Engine pool;
  pool.with_threads(0);
  const bool agree = pool.run_batch(spec) == stats;
  std::printf("parallel sweep agrees with serial: %s\n", agree ? "yes" : "NO");

  // --- grid view: a multi-axis sweep as one declaration ------------------
  // The same election on the message-passing clique, across port policies
  // and round budgets; one RunStats per grid point, rendered as a table.
  Grid grid(Experiment::message_passing(SourceConfiguration::from_loads({2, 3}))
                .with_protocol("wait-for-singleton-LE")
                .with_task("leader-election")
                .with_port_seed(7));
  grid.over_policies({PortPolicy::kCyclic, PortPolicy::kRandomPerRun,
                      PortPolicy::kAdversarial})
      .over_rounds({50, 300})
      .over_seeds(1, 100);
  const ResultTable table =
      grid_table("quickstart_grid", grid, run_grid(pool, grid));
  std::printf("\ngrid sweep on loads {2,3} (gcd 1 — even the adversarial "
              "wiring cannot freeze it):\n%s",
              table.to_text().c_str());
  return 0;
}
