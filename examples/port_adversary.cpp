// The Lemma 4.3 adversary, up close.
//
// For gcd(n_1,...,n_k) = g > 1 the paper constructs a port numbering under
// which the consistency complex π̃(ρ) of *every* positive realization only
// has facets of dimension ≡ −1 (mod g) — no isolated vertex, no leader,
// ever. This example prints the construction for loads {2,4} (g = 2),
// verifies its block-shift automorphism, contrasts the reachable class
// structures under adversarial vs random wirings, and shows that the same
// adversarial wiring is harmless when the gcd is 1.
//
// Build & run:  ./build/examples/port_adversary
#include <cstdio>
#include <map>

#include "core/consistency.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/report.hpp"
#include "util/partitions.hpp"

using namespace rsb;

namespace {

void class_size_census(const SourceConfiguration& config,
                       const PortAssignment& ports, int t) {
  KnowledgeStore store;
  std::map<std::vector<int>, int> census;
  for_each_positive_realization(config, t, [&](const Realization& rho) {
    std::vector<int> sizes = block_sizes(
        consistency_partition_message_passing(store, rho, ports));
    std::sort(sizes.begin(), sizes.end());
    ++census[sizes];
  });
  for (const auto& [sizes, count] : census) {
    std::printf("    classes {");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%s%d", i ? "," : "", sizes[i]);
    }
    std::printf("} : %d realizations\n", count);
  }
}

}  // namespace

int main() {
  const SourceConfiguration config = SourceConfiguration::from_loads({2, 4});
  const int n = config.num_parties();
  const int g = config.gcd_of_loads();
  std::printf("loads {2,4}: n = %d parties, g = gcd = %d\n", n, g);

  const PortAssignment adversarial = PortAssignment::adversarial_for(config);
  std::printf("\nadversarial port table (party: neighbor per port 1..%d):\n",
              n - 1);
  std::printf("%s\n", adversarial.to_string().c_str());

  // The block-shift automorphism f(m·g + r) = m·g + (r+1 mod g).
  std::vector<int> f(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    f[static_cast<std::size_t>(i)] = (i / g) * g + (i % g + 1) % g;
  }
  std::printf("\nblock-shift f = (");
  for (int i = 0; i < n; ++i) {
    std::printf("%s%d→%d", i ? ", " : "", i, f[static_cast<std::size_t>(i)]);
  }
  std::printf(")\n  f is a port-preserving automorphism: %s\n",
              adversarial.is_automorphism(f) ? "yes" : "no");

  std::printf("\nreachable class-size multisets at t = 3:\n");
  std::printf("  under the adversarial wiring (all sizes multiples of %d):\n",
              g);
  class_size_census(config, adversarial, 3);

  Xoshiro256StarStar rng(99);
  const PortAssignment random_ports = PortAssignment::random(n, rng);
  std::printf("  under a random wiring (singletons appear, leaders "
              "possible):\n");
  class_size_census(config, random_ports, 3);

  // With gcd 1 the adversary construction degenerates (g = 1 blocks) and
  // cannot prevent symmetry breaking.
  const SourceConfiguration coprime = SourceConfiguration::from_loads({2, 3});
  const PortAssignment degenerate = PortAssignment::adversarial_for(coprime);
  std::printf("\nloads {2,3} (gcd 1): the 'adversarial' wiring is powerless —"
              "\n  class census at t = 3:\n");
  class_size_census(coprime, degenerate, 3);

  // The same contrast as live batches: a one-declaration policy grid —
  // under the adversarial wiring the election never terminates; under
  // random wirings it always does.
  Engine engine;
  Grid grid(Experiment::message_passing(config, PortPolicy::kAdversarial)
                .with_protocol("wait-for-singleton-LE")
                .with_rounds(300));
  grid.over_policies({PortPolicy::kAdversarial, PortPolicy::kRandomPerRun})
      .over_seeds(1, 20);
  const std::vector<RunStats> results = run_grid(engine, grid);
  std::printf("\nengine policy grid on loads {2,4} (20 seeds per point):\n%s",
              grid_table("port_adversary", grid, results).to_text().c_str());
  std::printf("(the adversarial row is frozen forever — termination rate "
              "%.2f vs %.2f under random wirings)\n",
              results[0].termination_rate(), results[1].termination_rate());

  return 0;
}
