// The paper's Section 1 motivation, as a scenario: a fleet of devices whose
// "independent" randomness is not independent at all.
//
// Real-world measurements found >250,000 devices sharing SSH keys and
// ~1/172 RSA certificates sharing a prime factor with another one — the
// symptom of firmware images shipping with identical PRNG seeds. We model
// a fleet of n devices in which each *batch* (firmware image) shares one
// randomness source, and ask: can the fleet still elect a coordinator?
//
// The framework answers exactly:
//  * broadcast network (blackboard): possible iff some batch has a single
//    device (Theorem 4.1);
//  * point-to-point clique with local port numbers: possible iff the batch
//    sizes are setwise coprime (Theorem 4.2), even in the worst wiring.
//
// Build & run:  ./build/examples/correlated_keys
#include <cstdio>

#include "core/deciders.hpp"
#include "core/probability.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"

using namespace rsb;

namespace {

void analyze_fleet(const char* name, const std::vector<int>& batch_sizes) {
  const SourceConfiguration config = SourceConfiguration::from_loads(batch_sizes);
  const int n = config.num_parties();
  const SymmetricTask le = SymmetricTask::leader_election(n);

  std::printf("\n=== fleet '%s': %d devices in %d batches (", name, n,
              config.num_sources());
  for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
    std::printf("%s%d", i ? "," : "", batch_sizes[i]);
  }
  std::printf(") ===\n");
  std::printf("  gcd of batch sizes: %d; singleton batch: %s\n",
              config.gcd_of_loads(),
              config.has_singleton_source() ? "yes" : "no");
  std::printf("  broadcast network   : %s\n",
              eventually_solvable_blackboard(config, le)
                  ? "coordinator electable"
                  : "IMPOSSIBLE — correlated batches are indistinguishable");
  std::printf("  point-to-point mesh : %s\n",
              eventually_solvable_message_passing_worst_case(config, le)
                  ? "coordinator electable under every wiring"
                  : "IMPOSSIBLE under an adversarial wiring");

  // How long until the symmetry actually breaks on a broadcast network?
  if (eventually_solvable_blackboard(config, le) &&
      config.num_sources() * 8 <= 24) {
    std::printf("  broadcast election time (exact): ");
    for (int t = 1; t <= 8; ++t) {
      const double p =
          exact_solve_probability_blackboard(config, le, t).to_double();
      std::printf("p(%d)=%.3f ", t, p);
      if (p > 0.999) break;
    }
    std::printf("\n");
  }

  // And live batches on the mesh: 20 seeds under typical (random) wirings,
  // and — when the theorems say the worst case is hopeless — the same 20
  // seeds under the Lemma 4.3 adversarial wiring that realizes it. The
  // wiring axis is a one-declaration policy grid.
  Engine engine;
  std::vector<PortPolicy> policies = {PortPolicy::kRandomPerRun};
  if (!eventually_solvable_message_passing_worst_case(config, le)) {
    policies.push_back(PortPolicy::kAdversarial);
  }
  Grid grid(Experiment::message_passing(config)
                .with_port_seed(4242)
                .with_protocol("wait-for-singleton-LE")
                .with_task(le)
                .with_rounds(200));
  grid.over_policies(policies).over_seeds(1, 20);
  const std::vector<RunStats> results = run_grid(engine, grid);
  const RunStats& typical = results[0];
  std::printf("  live mesh, random wirings: coordinator in %llu/%llu runs "
              "(mean %.1f rounds)\n",
              static_cast<unsigned long long>(typical.task_successes),
              static_cast<unsigned long long>(typical.runs),
              typical.mean_rounds());
  if (results.size() > 1) {
    const RunStats& frozen = results[1];
    std::printf("  live mesh, adversarial wiring: coordinator in %llu/%llu "
                "runs (the worst case the theorem predicts)\n",
                static_cast<unsigned long long>(frozen.task_successes),
                static_cast<unsigned long long>(frozen.runs));
  }
}

}  // namespace

int main() {
  std::printf("Correlated-randomness fleets (cf. duplicated SSH/RSA keys)\n");

  // A healthy fleet: every device generated its own entropy.
  analyze_fleet("healthy", {1, 1, 1, 1, 1});

  // One big cloned batch plus a lone dev board: the dev board's unique
  // entropy saves the day on any network.
  analyze_fleet("cloned+dev-board", {4, 1});

  // Two cloned batches of coprime sizes: broadcast fails (no singleton),
  // but the mesh's port numbers break the tie — the paper's headline gap.
  analyze_fleet("two-batches-coprime", {2, 3});

  // Two cloned batches of even sizes: even the mesh can be wired so the
  // fleet never elects anyone.
  analyze_fleet("two-batches-even", {2, 4});

  // A fully cloned fleet: hopeless everywhere.
  analyze_fleet("fully-cloned", {5});

  return 0;
}
