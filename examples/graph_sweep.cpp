// Sparse-graph symmetry breaking through the topology subsystem.
//
// Sweeps Luby MIS over three topology families × crash counts
// (Grid::over_topologies × Grid::over_fault_counts) and tabulates
// rounds-to-decide: locality pays — on a bounded-degree graph the phase
// count barely moves with n — while the mis task judges survivors
// against the surviving subgraph, so crashes cost validity, not
// termination.
//
// Build & run:  ./build/examples/graph_sweep
#include <cstdio>

#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/report.hpp"
#include "graph/agents.hpp"
#include "graph/topology.hpp"

using namespace rsb;

namespace {

void mis_sweep() {
  std::printf("Luby MIS, n = 24, topology × crash-count sweep\n\n");
  Grid grid(Experiment::message_passing(SourceConfiguration::all_private(24))
                .with_agents(graph::make_agents("luby-mis"))
                .with_faults(sim::FaultPlan::crash_stop(0, 6))
                .with_rounds(300)
                .with_seeds(1, 200));
  grid.over_topologies({"ring", "d-regular(3)", "power-law(2)"})
      .over_fault_counts({0, 1, 3});

  Engine engine;
  ResultTable table("graph_sweep");
  for (const GridPoint& point : grid.expand()) {
    Experiment spec = point.spec;
    spec.with_task("mis");  // binds to the point's topology
    const RunStats stats = engine.run_batch(spec);
    auto row = table.add_row();
    for (const auto& [axis, value] : point.coords) row.set(axis, value);
    row.set("edges", spec.topology->num_edges());
    add_stats_columns(row, stats);
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "   mean-rounds tracks the phase count of the local algorithm, not n:"
      "\n   every instance decides in a handful of 2-round phases. Crashes"
      "\n   never block termination, but success-rate dips with the crash"
      "\n   count: a party that joined the MIS and then crashed leaves its"
      "\n   surviving neighbors settled-but-uncovered, and the mis task"
      "\n   judges the survivors' maximality honestly.\n");
}

}  // namespace

int main() {
  std::printf("sparse topologies & locality tasks (src/graph/)\n");
  std::printf(
      "================================================================\n\n");
  mis_sweep();
  return 0;
}
