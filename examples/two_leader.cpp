// The paper's Section 1.2 exercise: derive the characterization of
// 2-leader election with the framework, then generalize to m leaders.
//
// The framework reduces everything to one question about the consistency
// classes: can some sub-collection of classes total exactly m parties?
//  * blackboard: the finest reachable partition is the source partition
//    {n_1..n_k} → solvable ⇔ some subset of loads sums to m;
//  * message passing, worst-case ports: the finest guaranteed partition is
//    uniform with class size g = gcd(n_1..n_k) → solvable ⇔ g | m.
//
// This example prints the m × configuration matrix for both models and
// highlights rows where the two models disagree — including the striking
// {1,4} case where 1-LE is solvable but 2-LE is not, on the blackboard.
//
// Build & run:  ./build/examples/two_leader
#include <cstdio>

#include "core/deciders.hpp"
#include "engine/engine.hpp"
#include "engine/report.hpp"
#include "tasks/tasks.hpp"
#include "util/numeric.hpp"

using namespace rsb;

int main() {
  const std::vector<std::vector<int>> shapes = {
      {1, 1, 1}, {1, 2}, {3},    {1, 1, 2}, {2, 2},    {1, 3},
      {4},       {1, 4}, {2, 3}, {5},       {2, 4},    {3, 3},
      {1, 2, 3}, {6},    {2, 2, 2}};

  std::printf("m-leader election: blackboard (B) vs worst-case message "
              "passing (M)\n");
  std::printf("legend: + eventually solvable, . not solvable\n\n");
  ResultTable matrix("two_leader_matrix");
  for (const auto& loads : shapes) {
    const SourceConfiguration config = SourceConfiguration::from_loads(loads);
    const int n = config.num_parties();
    std::string label = "{";
    for (std::size_t i = 0; i < loads.size(); ++i) {
      label += (i ? "," : "") + std::to_string(loads[i]);
    }
    label += "}";
    auto row = matrix.add_row();
    row.set("loads", label).set("gcd", config.gcd_of_loads());
    for (int m = 1; m <= 4; ++m) {
      const std::string suffix = std::to_string(m);
      if (m > n) {
        row.set("m" + suffix + "(B)", "-").set("m" + suffix + "(M)", "-");
        continue;
      }
      const SymmetricTask task = SymmetricTask::m_leader_election(n, m);
      const bool board = eventually_solvable_blackboard(config, task);
      const bool mesh =
          eventually_solvable_message_passing_worst_case(config, task);
      row.set("m" + suffix + "(B)", board ? "+" : ".")
          .set("m" + suffix + "(M)", mesh ? "+" : ".");
    }
  }
  std::printf("%s", matrix.to_text().c_str());

  std::printf("\nobservations the framework hands you for free:\n");
  std::printf(" * {1,4}: 1-LE solvable on the blackboard (singleton source) "
              "but 2-LE is NOT\n   — no subset of {1,4} sums to 2. Solvability "
              "is not monotone in m.\n");
  std::printf(" * {2,3}: nothing solvable on the blackboard except via the "
              "mesh (gcd 1 ⇒ all m).\n");
  std::printf(" * {2,4}: blackboard solves m ∈ {2,4} (subset sums) while the "
              "mesh solves all even m.\n");
  std::printf(" * {3,3}: only multiples of 3 anywhere; the mesh adds "
              "nothing over the board here.\n");

  // Cross-check the derived predicates against first principles.
  bool consistent = true;
  for (const auto& loads : shapes) {
    const SourceConfiguration config = SourceConfiguration::from_loads(loads);
    const int n = config.num_parties();
    const int g = config.gcd_of_loads();
    for (int m = 0; m <= n; ++m) {
      const SymmetricTask task = SymmetricTask::m_leader_election(n, m);
      consistent = consistent &&
                   eventually_solvable_blackboard(config, task) ==
                       subset_sums_to(config.loads(), m) &&
                   eventually_solvable_message_passing_worst_case(config, task) ==
                       (m % g == 0);
    }
  }
  std::printf("\npredicate cross-check (subset-sum / gcd-divides): %s\n",
              consistent ? "consistent" : "INCONSISTENT");

  // Live confirmation through the experiment engine: on {2,4} (gcd 2) the
  // class-split protocol splits off exactly 2 leaders in every sampled
  // wiring, exactly as the matrix above predicts.
  Engine engine;
  const RunStats stats = engine.run_batch(
      Experiment::message_passing(SourceConfiguration::from_loads({2, 4}))
          .with_protocol("wait-for-class-split-LE(2)")
          .with_task("m-leader-election(2)")
          .with_rounds(400)
          .with_seeds(1, 10));
  std::printf("engine check, loads {2,4} m=2: %s\n", stats.summary().c_str());
  return consistent && stats.task_successes == stats.runs ? 0 : 1;
}
