// A traced leader election in the message-passing clique, showing the
// Euclid-style dimension reduction of Theorem 4.2 as it happens.
//
// Parties: 5, wired as batches {2,3} (gcd 1, no singleton source — the
// blackboard provably cannot elect here, Theorem 4.1). Each round we print
// the consistency partition π̃ of the realized execution: watch the facets
// split until an isolated vertex (the leader) appears, exactly the
// recursion of Lemma 4.7 — class sizes evolve like Euclid's algorithm on
// {2,3}: {2,3} → {2,2,1} or finer, down to a singleton.
//
// Build & run:  ./build/examples/euclid_election
#include <cstdio>
#include <string>

#include "core/consistency.hpp"
#include "core/deciders.hpp"
#include "engine/engine.hpp"
#include "randomness/source_bank.hpp"
#include "util/partitions.hpp"

using namespace rsb;

namespace {

std::string render_partition(const std::vector<int>& partition) {
  std::string out;
  const int blocks = block_count(partition);
  for (int b = 0; b < blocks; ++b) {
    out += "{";
    bool first = true;
    for (std::size_t party = 0; party < partition.size(); ++party) {
      if (partition[party] == b) {
        if (!first) out += ",";
        out += "P" + std::to_string(party);
        first = false;
      }
    }
    out += "} ";
  }
  return out;
}

}  // namespace

int main() {
  const SourceConfiguration config = SourceConfiguration::from_loads({2, 3});
  const SymmetricTask le = SymmetricTask::leader_election(5);
  std::printf("loads {2,3}: blackboard solvable? %s   "
              "message passing (worst case)? %s\n",
              eventually_solvable_blackboard(config, le) ? "yes" : "no",
              eventually_solvable_message_passing_worst_case(config, le)
                  ? "yes"
                  : "no");

  // The cyclic wiring is vertex-transitive — the hardest symmetric case —
  // so the splitting below is driven by randomness and class boundaries,
  // not by accidental port asymmetry.
  const PortAssignment ports = PortAssignment::cyclic(5);
  std::printf("\nwiring: %s\n", ports.to_string().c_str());

  const std::uint64_t seed = 1;
  SourceBank bank(config, seed);
  KnowledgeStore store;
  std::vector<KnowledgeId> knowledge = initial_knowledge(store, 5);

  std::printf("\nround-by-round consistency partition π̃ (facets of the "
              "projected complex):\n");
  int leader_round = -1;
  for (int round = 1; round <= 40 && leader_round < 0; ++round) {
    std::vector<bool> bits;
    for (int party = 0; party < 5; ++party) {
      bits.push_back(bank.party_bit(party, round));
    }
    knowledge = message_round(store, knowledge, bits, ports);
    const auto partition = knowledge_partition(knowledge);
    const auto sizes = block_sizes(partition);
    std::printf("  t=%2d  %s", round, render_partition(partition).c_str());
    bool singleton = false;
    for (int s : sizes) singleton = singleton || s == 1;
    if (singleton) {
      std::printf("  ← isolated vertex: leader determined");
      leader_round = round;
    }
    std::printf("\n");
  }

  // Re-run the same execution through the experiment engine to confirm all
  // parties decide consistently one round after the split is visible.
  Engine engine;
  const auto outcome =
      engine.run(Experiment::message_passing(config)
                     .with_ports(ports)
                     .with_protocol("wait-for-singleton-LE")
                     .with_rounds(100),
                 seed);
  if (outcome.terminated) {
    int leader = -1;
    for (int i = 0; i < 5; ++i) {
      if (outcome.outputs[static_cast<std::size_t>(i)] == 1) leader = i;
    }
    std::printf("\nprotocol outcome: party P%d elected at round %d "
                "(symmetry broke at t=%d; +1 round to observe it)\n",
                leader, outcome.rounds, leader_round);
  } else {
    std::printf("\nprotocol did not terminate (unexpected for gcd=1)\n");
  }
  return 0;
}
