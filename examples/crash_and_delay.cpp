// Crash-stop faults and adversarial scheduling through the Experiment API.
//
// Two sweeps exercise the fault & scheduler layer end to end:
//
//  1. a t-of-n crash sweep (Grid::over_fault_counts) of the blackboard
//     leader election, judged by the t-resilient task and refined by a
//     custom collector that separates the two failure modes — "the
//     election died" vs "the elected leader died" (a CombineCollectors of
//     the built-in RunStats and a fold over the crash schedules);
//
//  2. a scheduler sweep (Grid::over_schedulers) pitting the delay-tolerant
//     gossip election against random interleaving and targeted starvation,
//     showing that a timing-only adversary moves rounds but never outputs.
//
// Build & run:  ./build/examples/crash_and_delay
#include <cstdio>
#include <memory>

#include "algo/agents.hpp"
#include "engine/collector.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/report.hpp"

using namespace rsb;

namespace {

/// Dead-leader accounting: a run that terminated, elected a leader, but
/// the leader then crashed — the failure mode strict tasks cannot see.
struct DeadLeaderTally {
  std::uint64_t dead_leaders = 0;

  void observe(const RunView&, const ProtocolOutcome& outcome) {
    if (!outcome.terminated || outcome.crash_round.empty()) return;
    for (std::size_t party = 0; party < outcome.outputs.size(); ++party) {
      if (outcome.outputs[party] == 1 && outcome.decision_round[party] >= 0 &&
          outcome.crash_round[party] >= 0) {
        ++dead_leaders;
        return;
      }
    }
  }
  void merge(DeadLeaderTally&& other) { dead_leaders += other.dead_leaders; }
};

void fault_sweep() {
  std::printf("1. crash-stop sweep: blackboard election, n = 6, "
              "t-resilient-leader-election(3)\n\n");
  Grid grid(Experiment::blackboard(SourceConfiguration::all_private(6))
                .with_protocol("wait-for-singleton-LE")
                .with_task("t-resilient-leader-election(3)")
                .with_faults(sim::FaultPlan::crash_stop(0, 6))
                .with_rounds(300)
                .with_seeds(1, 200));
  grid.over_fault_counts({0, 1, 2, 3});

  Engine engine;
  ResultTable table("fault_sweep");
  const auto points = grid.expand();
  for (const GridPoint& point : points) {
    auto [stats, tally] =
        engine
            .run_collect(point.spec,
                         CombineCollectors(RunStats{}, DeadLeaderTally{}))
            .parts();
    auto row = table.add_row();
    for (const auto& [axis, value] : point.coords) row.set(axis, value);
    add_stats_columns(row, stats);
    row.set("crashed", stats.crashed_parties)
        .set("dead_leaders", tally.dead_leaders);
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("   every success lost vs t=0 is a dead leader: the survivors"
              " always finish,\n   but a leader elected before its crash"
              " round dies with the title.\n\n");
}

void scheduler_sweep() {
  std::printf("2. scheduler sweep: gossip election, n = 6 "
              "(timing-only adversaries)\n\n");
  Grid grid(Experiment::message_passing(SourceConfiguration::all_private(6),
                                        PortPolicy::kCyclic)
                .with_agents([](int) {
                  return std::make_unique<sim::GossipLeaderElectionAgent>();
                })
                .with_task("leader-election")
                .with_rounds(64)
                .with_seeds(1, 200));
  grid.over_schedulers({
      sim::SchedulerSpec::synchronous(),
      sim::SchedulerSpec::random_delay(4),
      sim::SchedulerSpec::adversarial_starve({0}, 4),
      sim::SchedulerSpec::adversarial_starve({0, 1, 2}, 4),
  });
  Engine engine;
  const ResultTable table =
      grid_table("scheduler_sweep", grid, run_grid(engine, grid));
  std::printf("%s\n", table.to_text().c_str());
  std::printf("   success never moves — the gossip decision depends only on"
              " the word multiset —\n   but starvation of party 0 taxes"
              " every run the full delay.\n");
}

}  // namespace

int main() {
  std::printf("crash-stop faults & adversarial schedulers "
              "(sim/fault.hpp, sim/scheduler.hpp)\n");
  std::printf("================================================================\n\n");
  fault_sweep();
  scheduler_sweep();
  return 0;
}
