// rsbd — the experiment service daemon.
//
// Binds 127.0.0.1:<port> (0 = ephemeral), announces the bound port on
// stdout, then serves the line protocol (src/service/server.hpp) until
// SIGTERM/SIGINT or a client's `shutdown` op; either way it drains the
// admitted queue before exiting, so accepted jobs always finish streaming.
//
//   rsbd [--port N] [--threads N] [--cache-mb N] [--max-queue N]
//        [--quantum RUNS]
//
// The announce line ("rsbd: listening on 127.0.0.1:41234") is how scripts
// discover an ephemeral port: start rsbd, read the first stdout line.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/server.hpp"
#include "util/error.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--threads N] [--cache-mb N]"
               " [--max-queue N] [--quantum RUNS] [--no-orbit]\n",
               argv0);
  std::exit(2);
}

long long parse_number(const char* argv0, const char* flag, const char* text) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "%s: %s wants a non-negative integer, got '%s'\n",
                 argv0, flag, text);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  rsb::service::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      config.port = static_cast<int>(parse_number(argv[0], "--port", argv[++i]));
    } else if (arg == "--threads" && has_value) {
      config.threads =
          static_cast<int>(parse_number(argv[0], "--threads", argv[++i]));
    } else if (arg == "--cache-mb" && has_value) {
      config.cache_bytes = static_cast<std::uint64_t>(parse_number(
                               argv[0], "--cache-mb", argv[++i]))
                           << 20;
    } else if (arg == "--max-queue" && has_value) {
      config.max_queue_jobs = static_cast<std::size_t>(
          parse_number(argv[0], "--max-queue", argv[++i]));
    } else if (arg == "--quantum" && has_value) {
      config.quantum_runs = static_cast<std::uint64_t>(
          parse_number(argv[0], "--quantum", argv[++i]));
    } else if (arg == "--no-orbit") {
      // Default-off orbit dedup; a spec's own `orbit=on` still enables it.
      config.orbit = false;
    } else {
      usage(argv[0]);
    }
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  rsb::service::Server server(config);
  try {
    server.start();
  } catch (const rsb::Error& e) {
    std::fprintf(stderr, "rsbd: %s\n", e.what());
    return 1;
  }
  std::printf("rsbd: listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  while (g_signalled == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "rsbd: draining\n");
  server.stop();

  const rsb::service::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "rsbd: served %llu jobs (%llu rejected), %llu runs executed"
               " (%llu orbit-deduped), %llu runs from cache\n",
               static_cast<unsigned long long>(stats.jobs_completed),
               static_cast<unsigned long long>(stats.jobs_rejected),
               static_cast<unsigned long long>(stats.runs_executed),
               static_cast<unsigned long long>(stats.runs_deduped),
               static_cast<unsigned long long>(stats.runs_cached));
  return 0;
}
