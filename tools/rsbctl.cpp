// rsbctl — line client for rsbd (src/service/server.hpp).
//
//   rsbctl --port N submit <spec-file|->  [--format text|csv|json]
//   rsbctl --port N run <protocol> <task> <loads> [<seeds>] [key=value ...]
//   rsbctl --port N ping | stats | shutdown
//
// `submit` reads a canonical spec (src/service/canonical.hpp) from a file
// (`-` = stdin); `run` is the registry-name shorthand — it assembles the
// spec text from the protocol/task registry names, the load vector, an
// optional seeds range (default 0+1000), and any extra key=value lines.
// Rows stream to stdout as they arrive, in run-index order; the done
// summary goes to stderr as `done runs=N executed=X cached=Y` (scripts
// assert cache hits by grepping executed=0). The port comes from --port or
// $RSBD_PORT. Exit status: 0 on success, 1 when the server reports an
// error, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "graph/agents.hpp"
#include "graph/graph_task.hpp"
#include "graph/topology.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "util/error.hpp"

namespace {

using rsb::service::json::Value;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: rsbctl --port N submit <spec-file|-> [--format text|csv|json]\n"
      "       rsbctl --port N run <protocol|agents> <task> <loads> [<seeds>]"
      " [key=value ...]\n"
      "       rsbctl run --list\n"
      "       rsbctl --port N (ping|stats|shutdown)\n"
      "The port may also come from $RSBD_PORT.\n");
  std::exit(2);
}

std::string read_spec_file(const std::string& path) {
  if (path == "-") {
    std::ostringstream out;
    out << std::cin.rdbuf();
    return out.str();
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rsbctl: cannot read spec file '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string field(const Value& row, const char* key) {
  const Value* v = row.find(key);
  if (v == nullptr) return "";
  if (v->kind() == Value::Kind::kNumber) return v->raw_number();
  if (v->kind() == Value::Kind::kBool) return v->as_bool() ? "1" : "0";
  if (v->is_string()) return v->as_string();
  return v->serialize();
}

std::string csv_field(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string quoted = "\"";
  for (const char c : text) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void print_row(const std::string& format, const Value& msg, bool* csv_header) {
  const Value* row = msg.find("row");
  if (row == nullptr) return;
  if (format == "json") {
    std::printf("%s\n", msg.serialize().c_str());
    return;
  }
  if (format == "csv") {
    if (!*csv_header) {
      std::printf(
          "point,label,chunk,cached,seed_first,seeds,runs,terminated,"
          "successes,total_rounds,crashed_parties\n");
      *csv_header = true;
    }
    std::printf("%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
                field(msg, "point").c_str(),
                csv_field(field(msg, "label")).c_str(),
                field(msg, "chunk").c_str(), field(msg, "cached").c_str(),
                field(*row, "seed_first").c_str(), field(*row, "seeds").c_str(),
                field(*row, "runs").c_str(), field(*row, "terminated").c_str(),
                field(*row, "successes").c_str(),
                field(*row, "total_rounds").c_str(),
                field(*row, "crashed_parties").c_str());
    return;
  }
  // text
  const std::string label = field(msg, "label");
  std::printf("point %s%s chunk %s seeds %s+%s: runs=%s terminated=%s",
              field(msg, "point").c_str(),
              label.empty() ? "" : (" [" + label + "]").c_str(),
              field(msg, "chunk").c_str(), field(*row, "seed_first").c_str(),
              field(*row, "seeds").c_str(), field(*row, "runs").c_str(),
              field(*row, "terminated").c_str());
  const std::string successes = field(*row, "successes");
  if (!successes.empty()) std::printf(" successes=%s", successes.c_str());
  std::printf(" rounds=%s%s\n", field(*row, "total_rounds").c_str(),
              field(msg, "cached") == "1" ? " (cached)" : "");
}

int stream_job(rsb::service::Client& client, const std::string& spec,
               const std::string& format) {
  const std::string accepted =
      client.request(rsb::service::submit_request(spec));
  const Value head = Value::parse(accepted);
  const Value* type = head.find("type");
  if (type == nullptr || type->as_string() != "accepted") {
    std::fprintf(stderr, "rsbctl: %s\n",
                 head.find("reason") ? head.find("reason")->as_string().c_str()
                                     : accepted.c_str());
    return 1;
  }
  bool csv_header = false;
  while (auto line = client.read_line()) {
    const Value msg = Value::parse(*line);
    const std::string kind = field(msg, "type");
    if (kind == "row") {
      print_row(format, msg, &csv_header);
    } else if (kind == "done") {
      std::fprintf(stderr, "done runs=%s executed=%s cached=%s\n",
                   field(msg, "runs").c_str(),
                   field(msg, "runs_executed").c_str(),
                   field(msg, "runs_cached").c_str());
      return 0;
    } else if (kind == "error") {
      std::fprintf(stderr, "rsbctl: %s\n", field(msg, "reason").c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "rsbctl: server closed the connection mid-job\n");
  return 1;
}

/// `run --list`: every registry name a `run` invocation can spell, one
/// section per vocabulary. Purely local — the registries are compiled into
/// rsbctl, so no daemon (and no port) is needed.
int list_vocabulary() {
  const auto section = [](const char* title,
                          const std::vector<std::string>& lines) {
    std::printf("%s:\n", title);
    for (const std::string& line : lines) std::printf("  %s\n", line.c_str());
  };
  section("protocols", rsb::ProtocolRegistry::global().describe());
  section("tasks", rsb::TaskRegistry::global().describe());
  section("agents", rsb::graph::AgentRegistry::global().describe());
  section("graph tasks (need topology=)",
          rsb::graph::GraphTaskRegistry::global().describe());
  section("topologies", rsb::graph::TopologyRegistry::global().describe());
  section("execution knobs (hash-inert: results are byte-identical either "
          "way, so they never change the spec hash or cache shard)",
          {"batch=N           lockstep batch width; 0 = daemon default",
           "orbit=on|off      orbit-level run dedup: execute one run per "
           "initial-configuration orbit, replicate the rest; omit for the "
           "daemon default",
           "adaptive-budget=N total adaptive run budget (0 = uniform sweep)",
           "pilot=N           pilot runs per point for adaptive sweeps"});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  if (const char* env = std::getenv("RSBD_PORT")) port = std::atoi(env);
  std::string format = "text";
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else {
      rest.push_back(arg);
    }
  }
  if (rest.size() == 2 && rest[0] == "run" && rest[1] == "--list") {
    return list_vocabulary();
  }
  if (rest.empty() || port <= 0) usage();
  if (format != "text" && format != "csv" && format != "json") usage();

  const std::string command = rest[0];
  try {
    rsb::service::Client client;
    client.connect(port);
    if (command == "ping" || command == "stats") {
      std::printf("%s\n",
                  client.request("{\"op\":\"" + command + "\"}").c_str());
      return 0;
    }
    if (command == "shutdown") {
      std::printf("%s\n", client.request("{\"op\":\"shutdown\"}").c_str());
      return 0;
    }
    if (command == "submit") {
      if (rest.size() != 2) usage();
      return stream_job(client, read_spec_file(rest[1]), format);
    }
    if (command == "run") {
      if (rest.size() < 4) usage();
      // Agent names route to the agent backend; everything else stays a
      // protocol spec, so unknown names still fail with the server's
      // protocol-registry error listing the known names.
      const std::string backend_key =
          rsb::graph::AgentRegistry::global().contains(
              rest[1].substr(0, rest[1].find('(')))
              ? "agents"
              : "protocol";
      std::string spec = backend_key + "=" + rest[1] + "\ntask=" + rest[2] +
                         "\nloads=" + rest[3];
      spec += "\nseeds=" + (rest.size() > 4 && rest[4].find('=') ==
                                                   std::string::npos
                                ? rest[4]
                                : std::string("0+1000"));
      for (std::size_t i = 4; i < rest.size(); ++i) {
        if (rest[i].find('=') != std::string::npos) spec += "\n" + rest[i];
      }
      return stream_job(client, spec, format);
    }
    usage();
  } catch (const rsb::Error& e) {
    std::fprintf(stderr, "rsbctl: %s\n", e.what());
    return 1;
  }
}
